package vmm

import (
	"runtime"
	"sync/atomic"
	"time"

	"codesignvm/internal/fisa"
)

// defaultRingLen is the trace-ring capacity in records. Sized so the
// producer rarely blocks (a few hundred blocks of lookahead) while
// keeping the buffer L2-resident; tests shrink it to force wrap-around.
const defaultRingLen = 1 << 12

// traceRing is a bounded single-producer/single-consumer queue of trace
// records. The buffer is allocated once per VM and records are copied
// in place, so steady-state operation performs no allocation.
//
// head is the producer's publication frontier, tail the consumer's
// consumption frontier; both increase monotonically and are masked into
// the buffer. Each side keeps a cached copy of the other's frontier so
// the fast paths touch only their own cache line; the atomic
// store/load pairs on head and tail provide the happens-before edges
// that make the record contents (including *Translation pointees)
// visible across the goroutines.
type traceRing struct {
	buf  []traceRec
	mask uint64

	_    [64]byte // keep the frontier lines from false sharing
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	pHead      uint64 // producer-local mirror of head
	cachedTail uint64 // producer's last-seen tail

	// Observability (producer-owned). stalls counts full-ring waits;
	// onStall, when set, is invoked once per wait with the new total.
	stalls  uint64
	onStall func(n uint64)
}

func newTraceRing(n int) *traceRing {
	if n <= 0 {
		n = defaultRingLen
	}
	if n&(n-1) != 0 {
		panic("vmm: trace ring length must be a power of two")
	}
	return &traceRing{buf: make([]traceRec, n), mask: uint64(n - 1)}
}

// push publishes one record, blocking while the ring is full.
func (r *traceRing) push(rec *traceRec) {
	if r.pHead-r.cachedTail >= uint64(len(r.buf)) {
		r.waitSpace()
	}
	r.buf[r.pHead&r.mask] = *rec
	r.pHead++
	r.head.Store(r.pHead)
}

// waitSpace refreshes the cached tail until a slot frees up. The
// consumer is pure computation (no I/O), so a brief spin usually
// suffices; beyond that the producer yields rather than burn a core.
func (r *traceRing) waitSpace() {
	r.stalls++
	if r.onStall != nil {
		r.onStall(r.stalls)
	}
	for spins := 0; ; spins++ {
		r.cachedTail = r.tail.Load()
		if r.pHead-r.cachedTail < uint64(len(r.buf)) {
			return
		}
		if spins < 64 {
			continue
		}
		if spins < 1024 {
			runtime.Gosched()
			continue
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// tailPublishBatch is how many records the consumer applies between
// tail publications. Publishing the tail is a cross-core cache-line
// transfer the producer's space check must then re-read, so it is
// batched; the consumer still publishes whenever it catches up with
// the producer, which keeps drain points prompt and deadlock-free
// (a producer waiting for space always observes progress within one
// batch, and a consumer waiting for records has published its true
// frontier).
const tailPublishBatch = 64

// consume drains records in publication order, applying each through
// fn, until an opStop record is reached. It runs on the consumer
// goroutine; tail is republished every tailPublishBatch records and
// at every catch-up point.
func (r *traceRing) consume(fn func(*traceRec)) {
	t := r.tail.Load()
	spins := 0
	for {
		h := r.head.Load()
		if t == h {
			spins++
			if spins < 64 {
				continue
			}
			if spins < 1024 {
				runtime.Gosched()
				continue
			}
			time.Sleep(20 * time.Microsecond)
			continue
		}
		spins = 0
		for ; t != h; t++ {
			rec := &r.buf[t&r.mask]
			if rec.op == opStop {
				r.tail.Store(t + 1)
				return
			}
			fn(rec)
			if (t+1)%tailPublishBatch == 0 {
				r.tail.Store(t + 1)
			}
		}
		r.tail.Store(t) // caught up: publish the true frontier
	}
}

// drained reports whether the consumer has caught up with everything
// the producer published.
func (r *traceRing) drained() bool {
	return r.tail.Load() == r.pHead
}

// pending returns the producer-side view of how many published records
// the consumer has not yet applied.
func (r *traceRing) pending() uint64 {
	return r.pHead - r.tail.Load()
}

// defaultEventRingLen is the event side-ring capacity. It must be at
// least maxEventChunk (trace.go) so a full chunk always fits once the
// consumer has drained the preceding ones.
const defaultEventRingLen = 1 << 13

// eventRing is the bulk side-channel of the trace ring: flushEvents
// copies each execution leg's buffered observations here and publishes
// one opEvents record per chunk in the main ring. Visibility needs no
// head atomic of its own — the producer fills slots and *then* pushes
// the opEvents record, so the main ring's head release/acquire pair
// already orders the slot writes before the consumer's reads. The tail
// atomic is the space protocol: the consumer releases slots after
// replaying them, and the producer's acquire of tail orders those
// reads before the slots are overwritten.
type eventRing struct {
	buf  []fisa.Event
	mask uint64

	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	pHead      uint64 // producer publication frontier (producer-local)
	cachedTail uint64 // producer's last-seen tail

	cTail uint64 // consumer consumption frontier (consumer-local)
}

func newEventRing(n int) *eventRing {
	if n <= 0 {
		n = defaultEventRingLen
	}
	if n&(n-1) != 0 {
		panic("vmm: event ring length must be a power of two")
	}
	if n < maxEventChunk {
		panic("vmm: event ring shorter than maxEventChunk")
	}
	return &eventRing{buf: make([]fisa.Event, n), mask: uint64(n - 1)}
}

// pushAll copies one chunk (len(evs) <= maxEventChunk <= capacity)
// into the ring, blocking while space is short. The caller publishes
// the matching opEvents record afterwards; until then the consumer
// cannot observe these slots.
func (r *eventRing) pushAll(evs []fisa.Event) {
	n := uint64(len(evs))
	if uint64(len(r.buf))-(r.pHead-r.cachedTail) < n {
		r.waitSpace(n)
	}
	at := r.pHead & r.mask
	c := copy(r.buf[at:], evs)
	copy(r.buf, evs[c:])
	r.pHead += n
}

func (r *eventRing) waitSpace(n uint64) {
	for spins := 0; ; spins++ {
		r.cachedTail = r.tail.Load()
		if uint64(len(r.buf))-(r.pHead-r.cachedTail) >= n {
			return
		}
		if spins < 64 {
			continue
		}
		if spins < 1024 {
			runtime.Gosched()
			continue
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// view returns the next n published events as up to two contiguous
// segments (the second non-empty only when the range wraps). Consumer
// side; the slots stay owned by the consumer until release.
func (r *eventRing) view(n int) (a, b []fisa.Event) {
	at := r.cTail & r.mask
	if end := at + uint64(n); end <= uint64(len(r.buf)) {
		return r.buf[at:end], nil
	}
	return r.buf[at:], r.buf[:at+uint64(n)-uint64(len(r.buf))]
}

// release returns n consumed slots to the producer.
func (r *eventRing) release(n int) {
	r.cTail += uint64(n)
	r.tail.Store(r.cTail)
}
