package vmm

import (
	"runtime"
	"sync/atomic"
	"time"
)

// defaultRingLen is the trace-ring capacity in records. Sized so the
// producer rarely blocks (a few hundred blocks of lookahead) while
// keeping the buffer L2-resident; tests shrink it to force wrap-around.
const defaultRingLen = 1 << 12

// traceRing is a bounded single-producer/single-consumer queue of trace
// records. The buffer is allocated once per VM and records are copied
// in place, so steady-state operation performs no allocation.
//
// head is the producer's publication frontier, tail the consumer's
// consumption frontier; both increase monotonically and are masked into
// the buffer. Each side keeps a cached copy of the other's frontier so
// the fast paths touch only their own cache line; the atomic
// store/load pairs on head and tail provide the happens-before edges
// that make the record contents (including *Translation pointees)
// visible across the goroutines.
type traceRing struct {
	buf  []traceRec
	mask uint64

	_    [64]byte // keep the frontier lines from false sharing
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	pHead      uint64 // producer-local mirror of head
	cachedTail uint64 // producer's last-seen tail

	// Observability (producer-owned). stalls counts full-ring waits;
	// onStall, when set, is invoked once per wait with the new total.
	stalls  uint64
	onStall func(n uint64)
}

func newTraceRing(n int) *traceRing {
	if n <= 0 {
		n = defaultRingLen
	}
	if n&(n-1) != 0 {
		panic("vmm: trace ring length must be a power of two")
	}
	return &traceRing{buf: make([]traceRec, n), mask: uint64(n - 1)}
}

// push publishes one record, blocking while the ring is full.
func (r *traceRing) push(rec *traceRec) {
	if r.pHead-r.cachedTail >= uint64(len(r.buf)) {
		r.waitSpace()
	}
	r.buf[r.pHead&r.mask] = *rec
	r.pHead++
	r.head.Store(r.pHead)
}

// waitSpace refreshes the cached tail until a slot frees up. The
// consumer is pure computation (no I/O), so a brief spin usually
// suffices; beyond that the producer yields rather than burn a core.
func (r *traceRing) waitSpace() {
	r.stalls++
	if r.onStall != nil {
		r.onStall(r.stalls)
	}
	for spins := 0; ; spins++ {
		r.cachedTail = r.tail.Load()
		if r.pHead-r.cachedTail < uint64(len(r.buf)) {
			return
		}
		if spins < 64 {
			continue
		}
		if spins < 1024 {
			runtime.Gosched()
			continue
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// consume drains records in publication order, applying each through
// fn, until an opStop record is reached. It runs on the consumer
// goroutine; tail is republished after every record so producer-side
// drain points observe progress promptly.
func (r *traceRing) consume(fn func(*traceRec)) {
	t := r.tail.Load()
	spins := 0
	for {
		h := r.head.Load()
		if t == h {
			spins++
			if spins < 64 {
				continue
			}
			if spins < 1024 {
				runtime.Gosched()
				continue
			}
			time.Sleep(20 * time.Microsecond)
			continue
		}
		spins = 0
		for ; t != h; t++ {
			rec := &r.buf[t&r.mask]
			if rec.op == opStop {
				r.tail.Store(t + 1)
				return
			}
			fn(rec)
			r.tail.Store(t + 1)
		}
	}
}

// drained reports whether the consumer has caught up with everything
// the producer published.
func (r *traceRing) drained() bool {
	return r.tail.Load() == r.pHead
}

// pending returns the producer-side view of how many published records
// the consumer has not yet applied.
func (r *traceRing) pending() uint64 {
	return r.pHead - r.tail.Load()
}
