package vmm

import (
	"math"

	"codesignvm/internal/codecache"
	"codesignvm/internal/obs"
	"codesignvm/internal/obs/attrib"
)

// Observability wiring. The VM carries an optional *vmObs holding the
// run's recorder plus pre-registered metric handles, so every emission
// site costs one nil check when observability is disabled and no
// registry lookups when it is enabled. All sites are producer-side
// (dispatch, translators, flush/eviction handlers), so event order is
// the functional execution order and is identical between the
// sequential and pipelined modes; the only pipelined-mode-specific
// kinds are EvRingStall and EvRingDrain, which describe the host-side
// pipeline itself. Nothing here is read back by the simulation:
// observability is purely observational (see internal/obs).

// jtlbEpochInterval is the slow-path dispatch-lookup count between
// EvJTLBEpoch summaries. Per-lookup events would swamp a trace (the
// JTLB fronts every non-chained dispatch), so hit/miss behaviour is
// reported as periodic cumulative snapshots.
const jtlbEpochInterval = 1 << 16

// ringStallSample rate-limits EvRingStall events: the counter counts
// every full-ring wait, but only every ringStallSample-th emits an
// event (a saturated ring stalls continuously).
const ringStallSample = 1024

// Drain reasons (EvRingDrain payload A; keep OBSERVABILITY.md in sync).
const (
	drainSBTPromote = iota
	drainBBTFlush
	drainSBTFlush
	drainShadowEvict
)

// vmObs caches the metric handles of one run's recorder.
type vmObs struct {
	rec *obs.Recorder

	// Live-updated at their (rare) emission sites.
	bbtTranslations *obs.Counter
	sbtPromotions   *obs.Counter
	chains          *obs.Counter
	unchains        *obs.Counter
	bbtFlushes      *obs.Counter
	sbtFlushes      *obs.Counter
	shadowEvicts    *obs.Counter
	jtlbEpochs      *obs.Counter
	ringStalls      *obs.Counter
	ringDrains      *obs.Counter

	bbtBlockX86  *obs.Histogram
	sbtBlockX86  *obs.Histogram
	drainPending *obs.Histogram

	// Warm-start restore handles, registered lazily by obsRestoreInit
	// (from VM.Restore): runs that never restore keep exactly the
	// pre-warm-start metric set, so their snapshots — and anything
	// derived from them — are unchanged byte for byte.
	restoreFaults *obs.Counter
}

// SetObserver attaches (or, with nil, detaches) an observability
// recorder. Call it before Run. The recorder hangs off the VM, never
// off Config: Config must stay a flat comparable value — it keys the
// experiment-layer run caches and is hashed for the persistent store.
//
// When the recorder carries a Timeline (Observer.EnableTimeline), the
// interval sampler is armed as well: the producer snapshots code-cache
// occupancy into the sample records and the timing consumer captures a
// slice at each interval boundary.
func (v *VM) SetObserver(rec *obs.Recorder) {
	v.tl = rec.Timeline()
	v.prof = rec.Attrib()
	if v.tl != nil {
		v.tlNext = v.tl.NextBoundary()
		v.tlArmed = true
	} else {
		v.tlNext = math.Inf(1)
		v.tlArmed = false
	}
	if rec == nil {
		v.obs = nil
		return
	}
	reg := rec.Reg
	v.obs = &vmObs{
		rec:             rec,
		bbtTranslations: reg.Counter("vm.bbt.translations", "blocks"),
		sbtPromotions:   reg.Counter("vm.sbt.promotions", "superblocks"),
		chains:          reg.Counter("vm.chain.links", "links"),
		unchains:        reg.Counter("vm.chain.unlinks", "blocks"),
		bbtFlushes:      reg.Counter("vm.cache.bbt.flushes", "flushes"),
		sbtFlushes:      reg.Counter("vm.cache.sbt.flushes", "flushes"),
		shadowEvicts:    reg.Counter("vm.shadow.evictions", "blocks"),
		jtlbEpochs:      reg.Counter("vm.jtlb.epochs", "epochs"),
		ringStalls:      reg.Counter("vm.ring.stalls", "waits"),
		ringDrains:      reg.Counter("vm.ring.drains", "drains"),
		bbtBlockX86:     reg.Histogram("vm.bbt.block_x86", "x86 instrs", obs.BucketsPow2(2, 8)),
		sbtBlockX86:     reg.Histogram("vm.sbt.superblock_x86", "x86 instrs", obs.BucketsPow2(4, 8)),
		drainPending:    reg.Histogram("vm.ring.drain_pending", "records", obs.BucketsPow2(1, 13)),
	}
}

// Observer returns the attached recorder (nil when disabled).
func (v *VM) Observer() *obs.Recorder {
	if v.obs == nil {
		return nil
	}
	return v.obs.rec
}

func (v *VM) obsRunStart(budget uint64) {
	v.obs.rec.EmitAt(obs.EvRunStart, 0, v.instrs, budget, 0, 0)
}

// obsRunEnd mirrors the statistics the simulator already keeps (Result
// fields, code-cache stats) into the registry — mirrored once here
// instead of double-counted on the hot path — emits the closing event,
// and attaches the snapshot to the Result.
func (v *VM) obsRunEnd() {
	o := v.obs
	reg := o.rec.Reg
	reg.Counter("vm.run.instrs", "instrs").Store(v.res.Instrs)
	reg.Gauge("vm.run.cycles", "cycles").Set(v.res.Cycles)
	reg.Counter("vm.run.callouts", "callouts").Store(v.res.Callouts)
	reg.Counter("vm.jtlb.hits", "lookups").Store(v.res.JTLBHits)
	reg.Counter("vm.jtlb.misses", "lookups").Store(v.res.JTLBMisses)
	reg.Gauge("vm.shadow.resident", "blocks").Set(float64(v.shadow.len()))
	for _, c := range [...]struct {
		name  string
		cache *codecache.Cache
	}{{"bbt", v.bbtCache}, {"sbt", v.sbtCache}} {
		st := c.cache.Stats()
		p := "vm.cache." + c.name + "."
		reg.Counter(p+"inserts", "translations").Store(st.Inserts)
		reg.Counter(p+"lookups", "lookups").Store(st.Lookups)
		reg.Counter(p+"hits", "lookups").Store(st.Hits)
		reg.Counter(p+"chains", "links").Store(st.Chains)
		reg.Gauge(p+"used", "bytes").Set(float64(c.cache.Used()))
		reg.Gauge(p+"live", "translations").Set(float64(c.cache.Len()))
	}
	if v.warm != nil {
		reg.Counter("vm.restore.translations", "translations").Store(v.res.RestoredTranslations)
		reg.Counter("vm.restore.x86", "instrs").Store(v.res.RestoredX86)
		reg.Gauge("vm.restore.pending", "translations").
			Set(float64(len(v.warm.bbt) + len(v.warm.sbt)))
	}
	if s := v.res.Attrib; s != nil {
		// Mirror the attribution categories as one labeled counter
		// family (OpenMetrics: codesignvm_cycles_total{category="..."}).
		for c := attrib.Category(0); c < attrib.NumCategories; c++ {
			reg.CounterL("cycles", "cycles", obs.Label("category", c.String())).
				Store(uint64(math.Round(s.Cat[c])))
		}
		o.rec.SetAttrib(s)
	}
	o.rec.EmitAt(obs.EvRunEnd, 0, v.instrs, v.res.Instrs, uint64(v.res.Cycles), 0)
	v.res.Metrics = reg.Snapshot()
}

// obsRestoreInit registers the warm-start metric handles. Called from
// Restore, never from SetObserver, so cold runs' metric sets are
// untouched by the warm-start machinery existing.
func (v *VM) obsRestoreInit() {
	o := v.obs
	o.restoreFaults = o.rec.Reg.Counter("vm.restore.faults", "faults")
}

// obsRestore closes the Restore call: how much of the snapshot is
// restorable and what the mode preloaded eagerly.
func (v *VM) obsRestore(preloaded, preloadedX86 uint64) {
	o := v.obs
	o.rec.EmitAt(obs.EvRestore, 0, v.instrs,
		uint64(v.warm.snap.Len()), preloaded, preloadedX86)
}

// obsRestoreFault reports one lazy fault-in.
func (v *VM) obsRestoreFault(t *codecache.Translation) {
	o := v.obs
	o.restoreFaults.Inc()
	o.rec.EmitAt(obs.EvRestoreFault, t.EntryPC, v.instrs, uint64(t.NumX86), uint64(t.Size), 0)
}

func (v *VM) obsBBTTranslate(t *codecache.Translation) {
	o := v.obs
	o.bbtTranslations.Inc()
	o.bbtBlockX86.Observe(uint64(t.NumX86))
	o.rec.EmitAt(obs.EvBBTTranslate, t.EntryPC, v.instrs, uint64(t.NumX86), uint64(t.NumUops), uint64(t.Size))
}

func (v *VM) obsSBTPromote(t *codecache.Translation) {
	o := v.obs
	o.sbtPromotions.Inc()
	o.sbtBlockX86.Observe(uint64(t.NumX86))
	o.rec.EmitAt(obs.EvSBTPromote, t.EntryPC, v.instrs, uint64(t.NumX86), uint64(t.NumUops), uint64(t.Size))
}

func (v *VM) obsChain(from, to *codecache.Translation) {
	o := v.obs
	o.chains.Inc()
	o.rec.EmitAt(obs.EvChain, v.pc, v.instrs, uint64(from.EntryPC), uint64(to.EntryPC), 0)
}

func (v *VM) obsUnchain(old *codecache.Translation) {
	o := v.obs
	o.unchains.Inc()
	o.rec.EmitAt(obs.EvUnchain, old.EntryPC, v.instrs, v.bbtCache.Epoch(), 0, 0)
}

// obsFlush reports a code-cache flush; id is 0 for BBT, 1 for SBT.
func (v *VM) obsFlush(c *codecache.Cache, id uint64) {
	o := v.obs
	if id == 0 {
		o.bbtFlushes.Inc()
	} else {
		o.sbtFlushes.Inc()
	}
	o.rec.EmitAt(obs.EvCacheFlush, 0, v.instrs, id, c.Epoch(), c.Stats().Flushes)
}

func (v *VM) obsShadowEvict(evictedPC uint32) {
	o := v.obs
	o.shadowEvicts.Inc()
	o.rec.EmitAt(obs.EvShadowEvict, evictedPC, v.instrs, uint64(v.shadow.len()), 0, 0)
}

// obsJTLB emits a periodic cumulative hit/miss summary; call after each
// slow-path lookup has been counted in res.
func (v *VM) obsJTLB() {
	total := v.res.JTLBHits + v.res.JTLBMisses
	if total%jtlbEpochInterval != 0 {
		return
	}
	o := v.obs
	o.jtlbEpochs.Inc()
	o.rec.EmitAt(obs.EvJTLBEpoch, 0, v.instrs, v.res.JTLBHits, v.res.JTLBMisses, 0)
}

// obsDrain reports a pipeline drain point; called with the pipeline
// live, before the wait, so pending reflects the consumer's backlog at
// the moment the sync began.
func (v *VM) obsDrain(reason int) {
	o := v.obs
	pending := v.ring.pending()
	o.ringDrains.Inc()
	o.drainPending.Observe(pending)
	o.rec.EmitAt(obs.EvRingDrain, 0, v.instrs, uint64(reason), pending, 0)
}

// obsArmRing installs (or clears) the trace ring's stall hook for this
// Run. Runs on the producer goroutine, like every stall.
func (v *VM) obsArmRing() {
	if v.obs == nil {
		v.ring.onStall = nil
		return
	}
	o := v.obs
	v.ring.onStall = func(n uint64) {
		o.ringStalls.Inc()
		if n%ringStallSample == 1 {
			o.rec.EmitAt(obs.EvRingStall, 0, v.instrs, n, 0, 0)
		}
	}
}
