package vmm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"runtime"

	"codesignvm/internal/bbt"
	"codesignvm/internal/codecache"
	"codesignvm/internal/fisa"
	"codesignvm/internal/hwassist"
	"codesignvm/internal/interp"
	"codesignvm/internal/obs"
	"codesignvm/internal/obs/attrib"
	"codesignvm/internal/profile"
	"codesignvm/internal/sbt"
	"codesignvm/internal/timing"
	"codesignvm/internal/x86"
)

// VM is one simulated machine executing one architected program.
//
// Execution is organized as a two-stage pipeline (see trace.go): the
// producer side (Run/dispatch/execute and the translators) performs
// functional work and emits trace records; the consumer side (apply and
// the helpers it calls) performs all timing work. Fields are owned by
// exactly one side while a pipelined Run is in flight; the Run epilogue
// reads consumer state only after joining the consumer goroutine.
type VM struct {
	Cfg Config
	Mem *x86.Memory

	eng  *timing.Engine
	nst  fisa.NativeState
	arch x86.State
	itp  *interp.Machine

	bbtCache *codecache.Cache
	sbtCache *codecache.Cache
	shadow   *shadowTable
	jtlb     *codecache.JTLB
	det      detector
	edges    *profile.EdgeProfile

	invalidated []*codecache.Translation // BBT blocks superseded by SBT

	// Translator scratch (producer-owned). Translations are built into
	// these reusable buffers and committed — copied into arena-backed
	// storage — before they become reachable: Insert commits into the
	// owning cache's arena; shadow blocks commit into shadowArena, a
	// bounded never-reset arena (shadow blocks die individually via the
	// clock table, not at a flush, so their storage is bump-carved until
	// the bound and heap-allocated past it). metaBuf plays the same role
	// for timing.AnalyzeWith's per-µop metadata.
	bbtScratch  bbt.Scratch
	sbtFormer   sbt.Former
	metaBuf     []codecache.UopMeta
	shadowArena *codecache.Arena

	// Producer state.
	pc       uint32
	halted   bool
	prevT    *codecache.Translation
	prevExit int
	inX86    bool   // current frontend mode (VM.fe)
	instrs   uint64 // retired architected instructions (mirrors res.Instrs)

	// evBuf is the deferred-observation buffer handed to fisa.Exec
	// (Env.Events): loads, stores and branch outcomes accumulate here
	// during the linear pass and are replayed in batch before the
	// segment's timing charge. Producer-owned; reused every block.
	evBuf []fisa.Event

	// Pipeline plumbing (nil/false in sequential mode).
	ring       *traceRing
	events     *eventRing // bulk side-channel for observation batches
	ringLen    int        // test hook; 0 selects defaultRingLen
	pipeDone   chan struct{}
	pipelining bool

	// Observability (nil when disabled; see obs.go). Producer-owned:
	// every emission site runs on the producer side of the pipeline.
	obs *vmObs

	// Warm-start state (nil unless Restore attached a snapshot).
	// Producer-owned: fault-ins happen inside dispatch.
	warm *warmState

	// tlArmed is the producer-side interval-sampler switch: when set,
	// emitSample gathers code-cache occupancy (producer-owned state)
	// into the sample record for the consumer's timeline capture.
	tlArmed bool

	// Consumer state: the timing engine above plus everything below.
	xlt        *hwassist.XLTUnit
	dmd        *hwassist.DualModeDecoder
	cycles     float64
	spanStart  float64 // attribution span opened by opBlockStart
	res        Result
	nextSample float64

	// Interval sampler (consumer side; see obs.go). tlNext is +Inf when
	// sampling is off, so the disabled cost on the timing path is the
	// single float compare guarding appendTimeline at each call site.
	tl     *obs.Timeline
	tlNext float64

	// Cycle-attribution profiler (consumer side; nil when disabled —
	// every hook below is guarded by the nil check, so the disabled
	// cost is one predictable branch per timing site).
	prof *attrib.Profile
}

// New builds a VM over the program memory with the given initial
// architected state (EIP at the program entry, ESP at the stack top).
func New(cfg Config, mem *x86.Memory, init *x86.State) *VM {
	if cfg.SampleGrowth <= 1 {
		cfg.SampleGrowth = 1.25
	}
	v := &VM{
		Cfg:      cfg,
		Mem:      mem,
		eng:      timing.NewEngine(cfg.Timing),
		bbtCache: codecache.New("bbt", bbtCacheBase, cfg.BBTCacheSize),
		sbtCache: codecache.New("sbt", sbtCacheBase, cfg.SBTCacheSize),
		shadow:   newShadowTable(cfg.ShadowCap),
		jtlb:     codecache.NewJTLB(cfg.JTLBEntries),
		det:      newDetector(&cfg),
		edges:    profile.NewEdgeProfile(),
		xlt:      hwassist.NewXLTUnit(),
		dmd:      &hwassist.DualModeDecoder{},

		pc:         init.EIP,
		arch:       *init,
		nextSample: 1000,
		tlNext:     math.Inf(1),

		evBuf: make([]fisa.Event, 0, 512),
	}
	if cfg.NoStartupSamples {
		v.nextSample = math.Inf(1)
	}
	// Bound the shadow arena relative to the shadow table: carving
	// stops (falling back to the heap) once roughly the table's
	// worst-case working set has been carved, so eviction churn cannot
	// grow the never-reset arena without bound.
	shadowCap := cfg.ShadowCap
	if shadowCap <= 0 {
		shadowCap = DefaultShadowCap
	}
	maxSlabs := shadowCap / 256
	if maxSlabs < 8 {
		maxSlabs = 8
	}
	v.shadowArena = codecache.NewBoundedArena(maxSlabs)
	v.nst.LoadArch(init)
	v.itp = interp.New(&v.arch, mem)
	v.res.Strategy = cfg.Strategy
	v.inX86 = cfg.Strategy == StratRef || cfg.Strategy == StratFE
	return v
}

// Engine exposes the timing engine (cache/predictor statistics).
func (v *VM) Engine() *timing.Engine { return v.eng }

// SaveTranslations serializes the live contents of both code caches
// (FX!32-style persistence: translate once, reuse across runs).
func (v *VM) SaveTranslations(w io.Writer) error {
	if err := v.bbtCache.Save(w); err != nil {
		return err
	}
	return v.sbtCache.Save(w)
}

// LoadTranslations restores previously saved translations into the code
// caches before (or during) a run, returning how many were loaded.
// Restored translations are re-analyzed for this machine's pipeline
// parameters; the architected binary must be the same one they were
// translated from.
func (v *VM) LoadTranslations(r io.Reader) (int, error) {
	br := bufio.NewReader(r) // one buffered view across both sections
	nb, err := v.bbtCache.Load(br)
	if err != nil {
		return nb, err
	}
	ns, err := v.sbtCache.Load(br)
	if err != nil {
		return nb + ns, err
	}
	for _, c := range []*codecache.Cache{v.bbtCache, v.sbtCache} {
		c.ForEach(func(t *codecache.Translation) {
			timing.AnalyzeWith(t, v.Cfg.Timing)
		})
	}
	return nb + ns, nil
}

// Caches exposes the code caches for inspection.
func (v *VM) Caches() (bbtC, sbtC *codecache.Cache) { return v.bbtCache, v.sbtCache }

// DetectorCount returns the profiled entry count for a region.
func (v *VM) DetectorCount(pc uint32) uint64 { return v.det.Count(pc) }

// OnBranch implements fisa.BranchProbe for the sequential mode (and the
// opBranch apply case): conditional branches inside translations train
// the predictor; misprediction bubbles are queued for the timing replay
// in program order.
func (v *VM) OnBranch(pc uint32, taken bool) {
	pen := 0.0
	if v.eng.Pred.Cond(pc, taken) {
		pen = float64(v.eng.P.MispredictPenalty)
	}
	v.eng.NoteBranch(pen)
}

func (v *VM) setMode(x86mode bool) {
	if x86mode {
		v.eng.P.MispredictPenalty = v.Cfg.MispredictPenaltyX86
	} else {
		v.eng.P.MispredictPenalty = v.Cfg.Timing.MispredictPenalty
	}
}

// charge advances the machine clock by cycles of software activity and
// attributes them to cat. Consumer side. Callers that also feed the
// attribution profiler make their own nil-guarded v.prof.Charge call:
// a guarded call inside this body would push charge past the inlining
// budget and cost every disabled-mode charge site a function call
// (the <2% disabled-cost contract, OBSERVABILITY.md).
func (v *VM) charge(cat Category, cycles float64) {
	v.eng.AdvanceClock(cycles)
	v.res.Cat[cat] += cycles
	v.cycles = v.eng.Now()
}

// attribute books already-elapsed machine time (from the dataflow
// replay) to cat. Consumer side.
func (v *VM) attribute(cat Category, delta float64) {
	v.res.Cat[cat] += delta
	v.cycles = v.eng.Now()
}

// sampleIfDue emits due startup-curve samples. Consumer side. This
// runs once per dispatched block and must stay within the inlining
// budget, which is why the timeline sampler lives in a separate
// check-plus-call at the (non-inlinable) call sites rather than here.
func (v *VM) sampleIfDue() {
	for v.cycles >= v.nextSample {
		v.res.Samples = append(v.res.Samples, v.snapshot())
		v.nextSample *= v.Cfg.SampleGrowth
	}
}

// appendTimeline records every due timeline slice; bbtUsed/sbtUsed are
// the code-cache occupancies the producer captured into the sample
// record (producer-owned state must not be read here while a pipelined
// run is in flight). Called only when a boundary has actually been
// crossed (rare — once per interval); the per-block disabled cost is
// the caller's single compare against the +Inf boundary.
func (v *VM) appendTimeline(bbtUsed, sbtUsed uint32) {
	for v.cycles >= v.tlNext {
		// The slice is stamped at the nominal boundary, not v.cycles:
		// the grid stays regular however far one block overshoots.
		v.tlNext = v.tl.Append(v.timeSlice(v.tlNext, bbtUsed, sbtUsed))
	}
}

// timeSlice snapshots the consumer's cumulative counters into one
// timeline slice ending at end.
func (v *VM) timeSlice(end float64, bbtUsed, sbtUsed uint32) obs.TimeSlice {
	return obs.TimeSlice{
		EndCycles:    end,
		Instrs:       v.res.Instrs,
		InterpInstrs: v.res.InterpInstrs,
		BBTInstrs:    v.res.BBTInstrs,
		SBTInstrs:    v.res.SBTInstrs,
		X86Instrs:    v.res.X86Instrs,
		VMMCycles:    v.res.Cat[CatVMM],
		XlateCycles:  v.res.Cat[CatBBTXlate] + v.res.Cat[CatSBTXlate],
		EmuCycles: v.res.Cat[CatBBTEmu] + v.res.Cat[CatSBTEmu] +
			v.res.Cat[CatX86Emu] + v.res.Cat[CatInterp],
		BBTUsed: bbtUsed,
		SBTUsed: sbtUsed,
	}
}

func (v *VM) snapshot() Sample {
	return Sample{
		Cycles:  v.cycles,
		Instrs:  v.res.Instrs,
		Cat:     v.res.Cat,
		XltBusy: float64(v.xlt.BusyCycles),
	}
}

// Run executes until maxInstrs architected instructions (cumulative over
// the VM's lifetime) have retired or the program halts. It may be called
// again with a larger budget to continue the same machine — e.g. after
// flushing the caches to study the code-cache-warm startup scenario.
//
// With Cfg.Pipeline set, functional execution and timing run decoupled
// on two goroutines (trace.go); results are byte-identical to the
// sequential mode. Decoupling only buys wall-clock time when the
// producer and consumer can actually run in parallel, so a single-proc
// host (GOMAXPROCS=1) falls back to the sequential path — same
// results, none of the hand-off overhead.
func (v *VM) Run(maxInstrs uint64) (*Result, error) {
	pipelined := v.Cfg.Pipeline && runtime.GOMAXPROCS(0) > 1 &&
		!v.halted && v.instrs < maxInstrs
	if v.obs != nil {
		v.obsRunStart(maxInstrs)
	}
	if pipelined {
		v.startPipeline()
	}
	var runErr error
	for !v.halted && v.instrs < maxInstrs {
		t, cat, err := v.dispatch()
		if err != nil {
			runErr = err
			break
		}
		if err := v.execute(t, cat); err != nil {
			runErr = err
			break
		}
		v.emitSample()
	}
	if pipelined {
		v.stopPipeline()
	}
	if runErr != nil {
		return &v.res, runErr
	}
	v.res.Cycles = v.cycles
	v.res.Halted = v.halted
	v.res.XltInvocations = v.xlt.Invocations
	v.res.XltBusyCycles = v.xlt.BusyCycles
	if v.prof != nil {
		// Reconcile the attribution against the run total; both pipeline
		// sides have joined, so consumer-owned profiler state is stable.
		v.res.Attrib = v.prof.Finish(v.res.Cycles)
	}
	if !v.Cfg.NoStartupSamples {
		v.res.Samples = append(v.res.Samples, v.snapshot())
	}
	if v.tl != nil {
		// Close the timeline with the run-end partial slice. Both
		// pipeline sides have joined, so producer-owned occupancy is
		// readable here.
		v.tl.AppendFinal(v.timeSlice(v.cycles, v.bbtCache.Used(), v.sbtCache.Used()))
	}
	if v.obs != nil {
		v.obsRunEnd()
	}
	return &v.res, nil
}

// dispatch resolves the next unit of execution for v.pc. The fast path
// is direct-threaded: a chained exit carries a resolved next-translation
// pointer that is valid by construction — every event that could
// invalidate it (cache flush, supersede) severs the chain eagerly
// (codecache.Translation.Unchain) — so following it needs no Invalid
// flag or epoch re-validation, no strategy switch and no map probe.
// Only hotspot detection remains on the fast path, gated by the
// precomputed Profiled bit. With Cfg.NoThreadedDispatch the legacy
// validity checks run again; they can never fail (the chains they would
// reject are already severed), so both modes follow identical chains.
func (v *VM) dispatch() (*codecache.Translation, Category, error) {
	if v.prevT != nil {
		e := &v.prevT.Exits[v.prevExit]
		if c := e.Chained; c != nil &&
			(!v.Cfg.NoThreadedDispatch || (!c.Invalid && c.Epoch == v.cacheOf(c).Epoch())) {
			if c.Profiled && v.det.RecordEntry(v.pc, c.NumX86) {
				if err := v.formSuperblock(v.pc); err != nil {
					return nil, 0, err
				}
				// c was just superseded; it still runs this one last
				// time (its chain was severed, so the next dispatch of
				// this PC resolves the superblock via the slow path).
			}
			return c, Category(c.DispCat), nil
		}
	}
	return v.dispatchSlow()
}

// adopt fills the owner-precomputed dispatch fields of a translation
// (fast-path category byte and hotspot-detection gate). Idempotent;
// runs on every slow-path dispatch so every translation that can ever
// become a chain target carries correct values.
func (v *VM) adopt(t *codecache.Translation) {
	t.DispCat = uint8(v.categoryOf(t))
	t.Profiled = v.Cfg.Strategy.UsesSBT() && t.Kind != codecache.KindSBT
}

// dispatchSlow resolves v.pc without a chain: jump-TLB, code-cache
// lookups or cold translation, then charges VMM costs, chains the
// previous exit and runs hotspot detection.
func (v *VM) dispatchSlow() (*codecache.Translation, Category, error) {
	cfg := &v.Cfg

	var t *codecache.Translation
	// Software jump-TLB: a direct-mapped array fronting the map
	// lookups of both code caches and the shadow table. It is a
	// host-side accelerator for the simulator itself — a hit pays
	// exactly the simulated dispatch cost a map hit would, so
	// simulated timing is unchanged; only host work is saved.
	if c := v.jtlb.Lookup(v.pc); c != nil && v.jtlbValid(c) {
		t = c
		v.res.JTLBHits++
	} else {
		v.res.JTLBMisses++
		// Lookup: optimized code first. On a miss, a pending warm-start
		// snapshot may hold the superblock — restoring it skips both the
		// hot-threshold wait and the optimizer (warm.go).
		if cfg.Strategy.UsesSBT() {
			if s := v.sbtCache.Lookup(v.pc); s != nil {
				t = s
			} else if v.warm != nil {
				t = v.warmFault(codecache.KindSBT, v.pc)
			}
		}
		if t == nil {
			var err error
			t, err = v.coldUnit()
			if err != nil {
				return nil, 0, err
			}
		}
		v.jtlb.Insert(v.pc, t)
	}
	v.adopt(t)
	if v.obs != nil {
		v.obsJTLB()
	}
	// Chain the previous direct exit to the found translation.
	if v.prevT != nil && !v.prevT.Shadow && !t.Shadow {
		e := &v.prevT.Exits[v.prevExit]
		if e.Kind == codecache.ExitFall || e.Kind == codecache.ExitTaken || e.Kind == codecache.ExitSide {
			v.cacheOf(t).Chain(v.prevT, v.prevExit, t)
			if v.obs != nil {
				v.obsChain(v.prevT, t)
			}
		}
	}

	cat := v.categoryOf(t)

	// VMM dispatch cost: only translated-code machines pay it; x86-mode
	// and interpreter transitions are folded into their per-instruction
	// costs. In VM.fe, crossings between x86-mode and translated code
	// are resolved by the hardware jump-TLB of the dual-mode frontend,
	// so transitions out of shadow blocks pay no software dispatch.
	fromShadow := v.prevT != nil && v.prevT.Shadow
	if !t.Shadow && (cfg.Strategy.UsesBBT() || t.Kind == codecache.KindSBT) &&
		!(cfg.Strategy == StratFE && fromShadow) {
		v.emitCharge(CatVMM, attrib.Chain, v.pc, cfg.DispatchCycles)
	}

	// Mode switches (VM.fe): crossing between x86-mode and native mode.
	// Chained dispatches never cross modes (chains link native-mode
	// translations only, and never lead out of a shadow block), so the
	// check lives on the slow path alone.
	if cfg.Strategy == StratFE {
		x86mode := cat == CatX86Emu
		if x86mode != v.inX86 {
			v.emitCharge(CatVMM, attrib.Chain, v.pc, cfg.ModeSwitchCycles)
			v.inX86 = x86mode
		}
	}

	// Hotspot detection on non-optimized code.
	if t.Profiled {
		if v.det.RecordEntry(v.pc, t.NumX86) {
			if err := v.formSuperblock(v.pc); err != nil {
				return nil, 0, err
			}
		}
	}
	return t, cat, nil
}

func (v *VM) categoryOf(t *codecache.Translation) Category {
	if t.Kind == codecache.KindSBT {
		return CatSBTEmu
	}
	switch v.Cfg.Strategy {
	case StratRef, StratFE:
		return CatX86Emu
	case StratInterp:
		return CatInterp
	case StratStaged3:
		if t.Shadow {
			return CatInterp
		}
		return CatBBTEmu
	default:
		return CatBBTEmu
	}
}

func (v *VM) cacheOf(t *codecache.Translation) *codecache.Cache {
	if t.Kind == codecache.KindSBT {
		return v.sbtCache
	}
	return v.bbtCache
}

// jtlbValid reports whether a jump-TLB hit for v.pc may be dispatched.
// A stale entry must never execute: superseded translations (Invalid),
// flushed cache epochs, evicted shadow blocks and interpreted blocks
// due for BBT promotion all force the slow path, which re-resolves and
// refills the entry.
func (v *VM) jtlbValid(c *codecache.Translation) bool {
	if c.Invalid {
		return false
	}
	if c.Shadow {
		if v.Cfg.Strategy == StratStaged3 && c.ExecCount >= uint64(v.Cfg.InterpToBBT) {
			return false // must promote to BBT via the slow path
		}
		return v.shadow.get(v.pc) == c // validates residency, touches the clock bit
	}
	if c.Kind == codecache.KindSBT {
		return c.Epoch == v.sbtCache.Epoch()
	}
	return c.Epoch == v.bbtCache.Epoch()
}

// shadowPut registers a shadow block, counting clock evictions and
// shooting down the jump-TLB entry of any victim. An eviction is a
// pipeline sync point: the consumer catches up before the victim's
// state is reused.
func (v *VM) shadowPut(pc uint32, t *codecache.Translation) {
	if epc, evicted := v.shadow.put(pc, t); evicted {
		v.drainPipeline(drainShadowEvict)
		v.res.ShadowEvictions++
		v.jtlb.Evict(epc)
		if v.obs != nil {
			v.obsShadowEvict(epc)
		}
	}
}

// coldUnit produces the execution unit for untranslated code at v.pc
// according to the strategy.
func (v *VM) coldUnit() (*codecache.Translation, error) {
	cfg := &v.Cfg
	switch cfg.Strategy {
	case StratRef, StratFE, StratInterp:
		// x86-mode / interpretation: the "translation" is a shadow block
		// representing what the hardware decoders (or the interpreter's
		// dispatch loop) process; building it costs nothing.
		if t := v.shadow.get(v.pc); t != nil {
			return t, nil
		}
		t, err := v.newShadowBlock()
		if err != nil {
			return nil, err
		}
		v.shadowPut(v.pc, t)
		return t, nil

	case StratSoft, StratBE:
		if t := v.bbtCache.Lookup(v.pc); t != nil && !t.Invalid {
			return t, nil
		}
		if t := v.warmFault(codecache.KindBBT, v.pc); t != nil {
			return t, nil
		}
		return v.translateBBT()

	case StratStaged3:
		if t := v.bbtCache.Lookup(v.pc); t != nil && !t.Invalid {
			return t, nil
		}
		if t := v.warmFault(codecache.KindBBT, v.pc); t != nil {
			// Restoring skips the interpret-then-promote staging: drop any
			// interpreted shadow state the restored block supersedes.
			v.shadow.remove(v.pc)
			return t, nil
		}
		// Interpret first-touch code; promote to BBT once the block has
		// re-executed enough to repay translation.
		if t := v.shadow.get(v.pc); t != nil {
			if t.ExecCount < uint64(cfg.InterpToBBT) {
				return t, nil
			}
			v.shadow.remove(v.pc)
			return v.translateBBT()
		}
		t, err := v.newShadowBlock()
		if err != nil {
			return nil, err
		}
		v.shadowPut(v.pc, t)
		return t, nil
	}
	return nil, fmt.Errorf("vmm: unknown strategy %v", cfg.Strategy)
}

// newShadowBlock builds the shadow block for v.pc: translated into the
// reusable scratch, analyzed, and committed into the shadow arena.
func (v *VM) newShadowBlock() (*codecache.Translation, error) {
	t, err := v.bbtScratch.Translate(v.Mem, v.pc, v.Cfg.BBT)
	if err != nil {
		return nil, err
	}
	t.Shadow = true
	v.analyze(t)
	return v.shadowArena.Commit(t), nil
}

// analyze fills t's timing metadata through the VM's reusable scratch
// buffer. The commit that follows every analyze copies the metadata
// into arena storage, so the buffer is free again for the next
// translation.
func (v *VM) analyze(t *codecache.Translation) {
	t.Meta = v.metaBuf[:0]
	timing.AnalyzeWith(t, v.Cfg.Timing)
	v.metaBuf = t.Meta[:0]
}

// translateBBT runs the basic-block translator at v.pc, charging the
// per-instruction translation cost of the configuration.
func (v *VM) translateBBT() (*codecache.Translation, error) {
	cfg := &v.Cfg
	t, err := v.bbtScratch.Translate(v.Mem, v.pc, cfg.BBT)
	if err != nil {
		return nil, err
	}
	v.analyze(t)

	complex := 0
	for i := range t.Uops {
		if t.Uops[i].Op == fisa.UCALLOUT {
			complex++
		}
	}
	simple := t.NumX86 - complex

	var cost float64
	switch cfg.Strategy {
	case StratBE:
		// HAloop with the XLTx86 unit; complex instructions fall back to
		// software cracking (Flag_cmplx).
		cost = cfg.BBTCyclesPerInst*float64(simple) + cfg.BBTComplexCycles*float64(complex)
		v.emitXlt(uint32(t.NumX86), simple, complex)
		// Fsrc streaming buffer and direct code-cache writeback: no
		// data-cache pollution (§4.2).
	default:
		cost = cfg.BBTCyclesPerInst * float64(t.NumX86)
		// The software translator reads architected code through the
		// data cache and writes the translation through it as well.
		v.emitTouch(t.EntryPC, uint32(t.X86Bytes), false)
	}
	v.emitCharge(CatBBTXlate, attrib.BBTTranslate, t.EntryPC, cost)

	// A flushing insert recycles the arena backing every old-epoch
	// translation, so the pipelined consumer must not be holding trace
	// records into them: drain before Insert, not after.
	if v.bbtCache.NeedsFlush(t.Size) {
		v.drainPipeline(drainBBTFlush)
	}
	t, flushed, err := v.bbtCache.Insert(t)
	if err != nil {
		return nil, err
	}
	if flushed {
		v.onBBTFlush()
	}
	if cfg.Strategy == StratSoft {
		v.emitTouch(t.Addr, uint32(t.Size), true)
	}
	v.res.BBTTranslations++
	v.res.BBTX86Translated += uint64(t.NumX86)
	if v.obs != nil {
		v.obsBBTTranslate(t)
	}
	return t, nil
}

// formSuperblock translates and optimizes the hot region entered at pc.
// Hot-threshold promotion is a pipeline sync point: the timing consumer
// catches up before the superblock is formed, so the decision and its
// side effects observe exactly the serial loop's state.
func (v *VM) formSuperblock(pc uint32) error {
	v.drainPipeline(drainSBTPromote)
	cfg := &v.Cfg
	t, err := v.sbtFormer.Form(v.Mem, pc, v.edges, cfg.SBT)
	if err != nil {
		return err
	}
	v.analyze(t)
	v.emitCharge(CatSBTXlate, attrib.SBTForm, pc, cfg.SBTCyclesPerInst*float64(t.NumX86))
	// The optimizer reads the architected code and writes the superblock
	// through the data cache (it is software in every configuration).
	v.emitTouch(pc, uint32(t.X86Bytes), false)

	// Drain before a flushing insert: the arena recycle must not race
	// the consumer's reads (see translateBBT).
	if v.sbtCache.NeedsFlush(t.Size) {
		v.drainPipeline(drainSBTFlush)
	}
	t, flushed, err := v.sbtCache.Insert(t)
	if err != nil {
		return err
	}
	if flushed {
		v.onSBTFlush()
	}
	v.emitTouch(t.Addr, uint32(t.Size), true)
	if v.obs != nil {
		v.obsSBTPromote(t)
	}

	// Retire the BBT block (or shadow profile state) it supersedes.
	// Severing its inbound chains is what retires it on the threaded
	// dispatch path: the next transition that used to chain into it
	// falls back to the slow path and resolves the superblock.
	if old := v.bbtCache.Lookup(pc); old != nil && !old.Invalid {
		old.Invalid = true
		old.Unchain()
		v.invalidated = append(v.invalidated, old)
		if v.obs != nil {
			v.obsUnchain(old)
		}
	}
	// Supersede the jump-TLB mapping: the next dispatch of pc must land
	// in the superblock, never a stale BBT or shadow entry.
	v.jtlb.Insert(pc, t)
	v.res.SBTTranslations++
	v.res.SBTX86Translated += uint64(t.NumX86)
	return nil
}

// onBBTFlush handles a basic-block code cache flush: chains are severed
// eagerly by the flush itself; profiling state is kept (the blocks
// remain warm in the detector, as with a real software counter table in
// VMM memory). Flushes are pipeline sync points — the drain runs before
// the flushing Insert (see translateBBT), because the flush recycles
// translation storage the consumer may still be reading.
func (v *VM) onBBTFlush() {
	v.invalidated = v.invalidated[:0]
	// The flush recycled its translations' storage; a stale jump-TLB
	// entry could therefore pass the epoch check while pointing at a
	// recycled slot that now holds a different current-epoch
	// translation. Evict the flushed kind eagerly; hit/miss counts are
	// unchanged (a stale entry was a miss before, a nil entry is a miss
	// now), and surviving shadow/SBT entries keep their future hits.
	v.jtlb.EvictKind(codecache.KindBBT)
	// The previous translation died with the flush: drop the reference
	// so the dispatch loop cannot read exits of a dead (and, with an
	// arena, soon-to-be-recycled) translation. Its chains are already
	// severed, so this changes no dispatch decision — the next dispatch
	// took the slow path either way.
	if v.prevT != nil && !v.prevT.Shadow && v.prevT.Kind != codecache.KindSBT {
		v.prevT = nil
	}
	if v.obs != nil {
		v.obsFlush(v.bbtCache, 0)
	}
}

// onSBTFlush handles a superblock cache flush: superseded BBT blocks
// become live again and regions must be re-detected before
// re-optimizing. Flushes are pipeline sync points — the drain runs
// before the flushing Insert (see formSuperblock).
func (v *VM) onSBTFlush() {
	v.jtlb.EvictKind(codecache.KindSBT) // see onBBTFlush
	for _, t := range v.invalidated {
		t.Invalid = false
	}
	v.invalidated = v.invalidated[:0]
	v.det = newDetector(&v.Cfg)
	if v.prevT != nil && v.prevT.Kind == codecache.KindSBT {
		v.prevT = nil // see onBBTFlush
	}
	if v.obs != nil {
		v.obsFlush(v.sbtCache, 1)
	}
}

// execute runs one translation functionally and emits its timing trace:
// block start (mode + fetch), the executed micro-op ranges with their
// memory and branch events, callout serializations, and the closing
// attribution/statistics record.
func (v *VM) execute(t *codecache.Translation, cat Category) error {
	if !v.pipelining && cat != CatInterp && t.FastExec {
		// Sequential mode runs eligible translations through the fused
		// execute+timing pass: one walk does the functional work and the
		// dataflow charge (timing.Engine.ExecBlock), which is
		// bit-identical to the split path below — see ExecBlock's
		// equivalence argument. Interpreted blocks keep the split path
		// (their timing is per-instruction software cost, not a dataflow
		// replay); the pipelined mode keeps it because its timing runs on
		// the consumer goroutine by design.
		return v.executeFused(t, cat)
	}
	env := fisa.Env{St: &v.nst, Mem: v.Mem}
	if v.pipelining {
		// Deferred-observation mode: fisa.Exec appends loads, stores
		// and branch outcomes to Env.Events instead of calling probe
		// interfaces; flushEvents copies the batch into the event
		// side-ring and publishes one coalesced opEvents record per
		// chunk — replacing the per-event ring records. The consumer
		// replays the batch in exact program order before the segment's
		// timing charge, so every engine-visible operation happens in
		// the same relative order as the per-event wiring it replaced.
		env.Events = v.evBuf[:0]
	} else {
		// Sequential mode: the probes feed the timing engine directly —
		// buffering and replaying would only add copy overhead when the
		// engine is right here on the same goroutine.
		env.Probe = v.eng
		if cat != CatInterp {
			env.Branch = v
		}
	}

	v.emitBlockStart(t, cat)

	var total, st fisa.ExecStats
	start := 0
	var exitIdx int
	for {
		kind, idx, err := fisa.Exec(&env, t.Uops, start, &st)
		if err != nil {
			return fmt.Errorf("vmm: executing %v block at %#x: %w", t.Kind, t.EntryPC, err)
		}
		total.Uops += st.Uops
		total.Entities += st.Entities
		total.Loads += st.Loads
		total.Stores += st.Stores
		total.Boundaries += st.Boundaries

		// Timing replay over the executed (linear) ranges: first the
		// leg's buffered observations, then the dataflow charge.
		v.flushEvents(&env, cat == CatInterp)
		if cat == CatInterp {
			v.emitSegInterp(st.Boundaries)
		} else if st.TakenBranchIdx >= 0 {
			v.emitSeg(t, start, st.TakenBranchIdx)
			v.emitSeg(t, idx, idx)
		} else {
			v.emitSeg(t, start, idx)
		}

		if kind == fisa.StopCallout {
			if err := v.calloutExec(t.Uops[idx].X86PC); err != nil {
				return err
			}
			v.emitCallout(cat != CatInterp && cat != CatX86Emu)
			start = idx + 1
			continue
		}
		exitIdx = int(t.Uops[idx].Imm)
		break
	}

	if env.Events != nil {
		v.evBuf = env.Events[:0] // retain the grown capacity for the next block
	}
	v.emitBlockEnd(cat, total.Boundaries, total.Uops, uint64(total.Entities))
	v.instrs += uint64(total.Boundaries)
	t.ExecCount++

	return v.resolveExit(t, exitIdx, cat)
}

// executeFused runs one translation through the fused execute+timing
// pass: the same block-start fetch, leg loop, callout handling,
// block-end attribution and exit resolution as the split path of
// execute, with fisa.Exec + ChargeBlock replaced by the single-walk
// timing.Engine.ExecBlock. Sequential mode only; the timing methods are
// called directly (no trace records).
func (v *VM) executeFused(t *codecache.Translation, cat Category) error {
	v.blockStart(t, cat)

	var total, st fisa.ExecStats
	start := 0
	var exitIdx int
	for {
		kind, idx, err := v.eng.ExecBlock(&v.nst, v.Mem, t, start, &st)
		if err != nil {
			return fmt.Errorf("vmm: executing %v block at %#x: %w", t.Kind, t.EntryPC, err)
		}
		total.Uops += st.Uops
		total.Entities += st.Entities
		total.Loads += st.Loads
		total.Stores += st.Stores
		total.Boundaries += st.Boundaries

		if kind == fisa.StopCallout {
			if err := v.calloutExec(t.Uops[idx].X86PC); err != nil {
				return err
			}
			v.callout(cat != CatX86Emu) // cat != CatInterp by the fast-path gate
			start = idx + 1
			continue
		}
		exitIdx = int(t.Uops[idx].Imm)
		break
	}

	v.blockEnd(cat, total.Boundaries, total.Uops, uint64(total.Entities))
	v.instrs += uint64(total.Boundaries)
	t.ExecCount++

	return v.resolveExit(t, exitIdx, cat)
}

// calloutExec executes one complex architected instruction via the
// interpreter with precise state (Fig. 1b's precise-state mapping).
func (v *VM) calloutExec(pc uint32) error {
	v.nst.StoreArch(&v.arch)
	v.arch.EIP = pc
	in, err := x86.DecodeMem(v.Mem, pc)
	if err != nil {
		return err
	}
	v.itp.Halted = false
	if err := v.itp.Exec(in); err != nil {
		return fmt.Errorf("vmm: callout at %#x: %w", pc, err)
	}
	v.nst.LoadArch(&v.arch)
	return nil
}

// interpFetch charges the interpreter's reads of architected code bytes
// (data-side accesses). Consumer side.
func (v *VM) interpFetch(t *codecache.Translation) float64 {
	const line = 64
	stall := 0.0
	first := t.EntryPC &^ (line - 1)
	last := (t.EntryPC + uint32(t.X86Bytes)) &^ (line - 1)
	for a := first; ; a += line {
		stall += float64(v.eng.Caches.DataPenalty(a, false))
		if a >= last {
			break
		}
	}
	return stall
}

// resolveExit consumes the translation exit, performing target
// resolution, control-transfer prediction and edge profiling.
func (v *VM) resolveExit(t *codecache.Translation, exitIdx int, cat Category) error {
	cfg := &v.Cfg
	e := &t.Exits[exitIdx]
	e.Count++

	var next uint32
	switch e.Kind {
	case codecache.ExitHalt:
		v.halted = true
		v.prevT = nil
		return nil

	case codecache.ExitIndirect:
		next = v.nst.R[e.TargetReg]
		var flags uint8
		switch {
		case e.Ret:
			flags |= flagRet
		case e.Call:
			flags |= flagCall
		}
		// Software indirect-target lookup for translated code. Returns
		// are exempt: the co-designed pipeline predicts them into the
		// code cache with a dual-address return address stack (the
		// hardware support for control transfers of Kim & Smith, cited
		// as the design's mechanism), so only computed jumps and
		// indirect calls take the software hash path.
		if !t.Shadow && cat != CatInterp && !e.Ret {
			flags |= flagIndLookup
		}
		v.emitExitInd(cat, e.BranchPC, next, e.ReturnPC, flags)

	default: // Fall, Taken, Side — static target
		next = e.Target
		if e.Call {
			v.emitExitCall(e.BranchPC, next, e.ReturnPC)
		}
		// Conditional-branch prediction was handled by the UBR probe
		// during execution; direct jumps/calls resolve in decode.
		if cfg.Strategy.UsesSBT() && t.Kind != codecache.KindSBT && e.BranchPC != 0 {
			v.edges.Record(e.BranchPC, next)
		}
	}

	v.pc = next
	v.prevT, v.prevExit = t, exitIdx
	return nil
}
