package vmm

import (
	"bytes"
	"testing"

	"codesignvm/internal/obs"
)

// runObserved simulates one run with timeline sampling enabled and the
// given sink attached, returning the result and the run's recorder.
func runObserved(t *testing.T, cfg Config, seed int64, budget uint64, ringLen int, pipeline bool, sink obs.Sink) (*Result, *obs.Recorder) {
	t.Helper()
	c := cfg
	c.Pipeline = pipeline
	o := obs.NewObserver(sink)
	o.EnableTimeline(obs.TimelineSpec{IntervalCycles: 5_000, MaxSlices: 64})
	rec := o.NewRun("test")
	vm := New(c, freshMemory(buildProgram(seed), seed), initState())
	vm.ringLen = ringLen
	vm.SetObserver(rec)
	res, err := vm.Run(budget)
	if err != nil {
		t.Fatalf("seed %d pipeline=%v: %v", seed, pipeline, err)
	}
	return res, rec
}

// timelineCSV exports one recorder's timeline as CSV bytes.
func timelineCSV(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteTimelinesCSV(&buf, []*obs.Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimelineIdenticalAcrossModes is the determinism golden test for
// the interval sampler: the exported timeline must be byte-identical
// between the sequential and pipelined execution modes. It holds by
// construction — cache occupancy is captured producer-side into the
// trace records and boundary crossings are decided consumer-side, so
// both modes see the same record sequence — and this pins it, including
// with a tiny ring (heavy drain/stall traffic).
func TestTimelineIdenticalAcrossModes(t *testing.T) {
	force2Procs(t)
	for seed := int64(1); seed <= 4; seed++ {
		cfg := DefaultConfig(StratSoft)
		cfg.HotThreshold = 12
		cfg.BBTCacheSize = 256
		cfg.SBTCacheSize = 512
		resSeq, recSeq := runObserved(t, cfg, seed, 4_000_000, 16, false, nil)
		resPipe, recPipe := runObserved(t, cfg, seed, 4_000_000, 16, true, nil)
		if resSeq.Cycles != resPipe.Cycles || resSeq.Instrs != resPipe.Instrs {
			t.Fatalf("seed %d: modes disagree on the result itself", seed)
		}
		seqCSV, pipeCSV := timelineCSV(t, recSeq), timelineCSV(t, recPipe)
		if !bytes.Equal(seqCSV, pipeCSV) {
			t.Fatalf("seed %d: timeline CSV differs between modes\nseq:\n%s\npipe:\n%s",
				seed, seqCSV, pipeCSV)
		}
		if recSeq.Timeline().Len() < 3 {
			t.Fatalf("seed %d: timeline too short (%d slices) to be a meaningful golden",
				seed, recSeq.Timeline().Len())
		}
	}
}

// TestTraceIdenticalAcrossModes: the Chrome trace export must be
// byte-identical between modes. The sink never writes the host-global
// Seq, timestamps are the producer instruction clock, and the
// host-pipeline kinds are excluded by default, so the pipelined run's
// extra ring events leave no mark.
func TestTraceIdenticalAcrossModes(t *testing.T) {
	force2Procs(t)
	cfg := DefaultConfig(StratSoft)
	cfg.HotThreshold = 12
	cfg.BBTCacheSize = 256
	cfg.SBTCacheSize = 512
	for seed := int64(1); seed <= 4; seed++ {
		var seqBuf, pipeBuf bytes.Buffer
		seqSink, pipeSink := obs.NewTraceSink(&seqBuf), obs.NewTraceSink(&pipeBuf)
		runObserved(t, cfg, seed, 4_000_000, 16, false, seqSink)
		runObserved(t, cfg, seed, 4_000_000, 16, true, pipeSink)
		if err := seqSink.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := pipeSink.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqBuf.Bytes(), pipeBuf.Bytes()) {
			t.Fatalf("seed %d: Chrome trace differs between modes", seed)
		}
		if seqBuf.Len() == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
	}
}

// TestTimelineShowsStartupTransient pins the paper's phenomenon as seen
// through the sampler: early intervals are translation-dominated with
// low IPC; once the hotspot is promoted, late intervals run mostly SBT
// code at higher IPC.
func TestTimelineShowsStartupTransient(t *testing.T) {
	cfg := DefaultConfig(StratSoft)
	cfg.Pipeline = false
	o := obs.NewObserver(nil)
	o.EnableTimeline(obs.TimelineSpec{IntervalCycles: 10_000, MaxSlices: 512})
	rec := o.NewRun("transient")
	vm := New(cfg, freshMemory(buildHotLoop(false), 1), initState())
	vm.SetObserver(rec)
	if _, err := vm.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	rows := rec.Timeline().Rows()
	if len(rows) < 4 {
		t.Fatalf("only %d timeline rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-2] // -2: skip the partial final slice
	if first.IPC >= last.IPC {
		t.Fatalf("no startup transient: first interval IPC %.3f >= late %.3f", first.IPC, last.IPC)
	}
	if first.XlateCycles == 0 {
		t.Fatal("first interval shows no translation cycles")
	}
	if last.SBTInstrs == 0 {
		t.Fatal("late interval shows no SBT instructions despite a hot loop")
	}
	if last.SBTUsed == 0 || last.BBTUsed == 0 {
		t.Fatalf("cache occupancy gauges empty at steady state: %+v", last)
	}
}

// TestObservedMatchesUnobservedWithTimeline extends the PR-3 invariant
// to the sampler: attaching a timeline-enabled recorder must not change
// any reported simulation result.
func TestObservedMatchesUnobservedWithTimeline(t *testing.T) {
	cfg := DefaultConfig(StratSoft)
	cfg.HotThreshold = 12
	cfg.Pipeline = false
	plain := func() *Result {
		vm := New(cfg, freshMemory(buildProgram(5), 5), initState())
		res, err := vm.Run(4_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	observed, rec := runObserved(t, cfg, 5, 4_000_000, 0, false, nil)
	if rec.Timeline().Len() == 0 {
		t.Fatal("timeline sampled nothing")
	}
	clone := *observed
	clone.Metrics = nil
	if plain.Cycles != clone.Cycles || plain.Instrs != clone.Instrs ||
		plain.Cat != clone.Cat || plain.BBTTranslations != clone.BBTTranslations ||
		plain.SBTTranslations != clone.SBTTranslations {
		t.Fatalf("timeline sampling changed reported results\nplain:    %+v\nobserved: %+v", plain, &clone)
	}
}
