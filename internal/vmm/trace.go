package vmm

import (
	"codesignvm/internal/codecache"
	"codesignvm/internal/fisa"
	"codesignvm/internal/obs/attrib"
	"codesignvm/internal/timing"
)

// acatExec maps a block's dispatch category to the attribution category
// its execution span is charged to (obs/attrib taxonomy). Translation
// work, chaining, restore traffic and the stall split-outs have their
// own categories and are charged at their own sites.
var acatExec = [NumCategories]attrib.Category{
	CatBBTXlate: attrib.BBTTranslate,
	CatSBTXlate: attrib.SBTForm,
	CatBBTEmu:   attrib.BBTExec,
	CatSBTEmu:   attrib.SBTExec,
	CatX86Emu:   attrib.X86Exec,
	CatInterp:   attrib.Interpret,
	CatVMM:      attrib.Chain,
}

// The execute/timing pipeline decouples the VM's functional work from
// its timing work. The producer (the Run loop: dispatch, translation,
// fisa.Exec) performs only functional execution and emits one compact
// trace record per timing-relevant event; the consumer applies the
// records, in exact trace order, against the timing engine (machine
// clock, cache hierarchy, branch predictor, per-category accounting and
// cycle-indexed samples).
//
// Determinism is by construction: the sequential mode and the pipelined
// mode emit the *same record sequence* through the *same apply switch*;
// the only difference is whether apply runs inline (sequential) or on
// the consumer goroutine fed by the SPSC ring (pipelined). Every apply
// case is a verbatim transplant of the corresponding statement of the
// pre-pipeline serial loop, so the two modes cannot diverge. Reported
// results are byte-identical (asserted by TestPipelineMatchesSequential
// here and by the figure-level determinism tests in
// internal/experiments).
//
// No functional decision in the producer reads timing state: hotspot
// detection counts entries, cache flushes trigger on code-cache
// occupancy, branch directions come from architected flags, and
// indirect targets from architected registers. The timing engine is a
// pure observer, which is what makes the split sound. The drain points
// (superblock formation, code-cache flushes, shadow eviction) are kept
// anyway as a defensive contract — see DESIGN.md.

// traceOp identifies one timing action.
type traceOp uint8

const (
	// opCharge advances the machine clock by c cycles of software
	// activity attributed to category cat (VM.charge); a carries the
	// incurring x86 PC and u8 the attrib.Category for the profiler.
	opCharge traceOp = iota
	// opTouch warms the data hierarchy over [a, a+b) (translator
	// traffic); flagWrite selects a write.
	opTouch
	// opXlt books XLTx86 activity for a VM.be block translation:
	// a = x86 instructions, i1 = simple, i2 = complex fallbacks.
	opXlt
	// opBlockStart opens one translation execution: sets the frontend
	// mode for cat, marks the attribution span start and charges the
	// instruction fetch of t.
	opBlockStart
	// opLoad / opStore are the data accesses of translated code
	// (a = addr, u8 = size), replayed into the cache hierarchy and the
	// load-latency queue in program order.
	opLoad
	opStore
	// opBranch is one executed conditional branch (a = x86 PC,
	// flagTaken = outcome): trains the predictor, queues the bubble.
	opBranch
	// opEvents replays a batch of i1 buffered observations (loads,
	// stores, branch outcomes) from the event side-ring in program
	// order — the coalesced form of an opLoad/opStore/opBranch record
	// sequence. flagInterp drops the branch outcomes (interpreted
	// blocks train no predictor).
	opEvents
	// opSeg replays the executed micro-op range t.Uops[i1..i2] through
	// the dataflow model (timing.ChargeBlock).
	opSeg
	// opSegInterp charges an interpreted segment of i1 architected
	// instructions plus the queued load stalls.
	opSegInterp
	// opCallout serializes the pipeline around a complex-instruction
	// callout; flagCalloutCost adds the VMM entry/exit cost.
	opCallout
	// opBlockEnd closes the block: profiling cost (BBT), dual-mode
	// decoder activity, span attribution to cat and retirement stats
	// (i1 = boundaries, i2 = uops, a = entities).
	opBlockEnd
	// opExitInd resolves an indirect exit: return/indirect prediction,
	// misprediction charge to cat and the software indirect-lookup
	// charge (a = branch PC, b = target, c = return PC; flagRet,
	// flagCall, flagIndLookup).
	opExitInd
	// opExitCall records a direct call with the return-address stack
	// (a = branch PC, b = target, c = return PC).
	opExitCall
	// opSample emits due startup-curve samples and timeline slices
	// (VM.sampleIfDue). When the interval sampler is armed, a/b carry
	// the BBT/SBT code-cache occupancy at emission: occupancy is
	// producer-owned, so the producer snapshots it into the record for
	// the consumer's timeline capture.
	opSample
	// opStop terminates the consumer (pipelined mode only).
	opStop
)

// traceRec flags.
const (
	flagWrite       uint8 = 1 << iota // opTouch: write access
	flagTaken                         // opBranch: branch taken
	flagCalloutCost                   // opCallout: charge CalloutCycles
	flagRet                           // opExitInd: return instruction
	flagCall                          // opExitInd: indirect call
	flagIndLookup                     // opExitInd: software target lookup
	flagInterp                        // opEvents: interpreted block — skip branch outcomes
)

// traceRec is one fixed-size trace record. Field use depends on op; see
// the op constants. Records are written in place into the ring buffer,
// so the pipeline allocates nothing per event.
type traceRec struct {
	t     *codecache.Translation
	c     float64 // opCharge cycles
	a, b  uint32
	i1    int32
	i2    int32
	op    traceOp
	flags uint8
	cat   Category
	u8    uint8 // memory access size; attrib category for opCharge
}

// apply performs the timing work of one trace record by dispatching to
// the timing methods below. It is the single timing interpreter for the
// pipelined consumer; the sequential path calls the same methods
// directly through the emit* helpers (run.go), skipping the record
// construction and this switch. Both modes therefore run the exact
// same statement sequence against the timing engine.
func (v *VM) apply(r *traceRec) {
	switch r.op {
	case opCharge:
		v.charge(r.cat, r.c)
		if v.prof != nil {
			v.prof.Charge(attrib.Category(r.u8), r.a, r.c)
		}

	case opTouch:
		v.eng.Caches.Touch(r.a, int(r.b), r.flags&flagWrite != 0)

	case opXlt:
		v.bookXlt(r.a, int(r.i1), int(r.i2))

	case opBlockStart:
		v.blockStart(r.t, r.cat)

	case opLoad:
		v.eng.OnLoad(r.a, r.u8)

	case opStore:
		v.eng.OnStore(r.a, r.u8)

	case opBranch:
		v.OnBranch(r.a, r.flags&flagTaken != 0)

	case opEvents:
		a, b := v.events.view(int(r.i1))
		interp := r.flags&flagInterp != 0
		v.replayEvents(a, interp)
		v.replayEvents(b, interp)
		v.events.release(int(r.i1))

	case opSeg:
		v.eng.ChargeBlock(r.t, int(r.i1), int(r.i2))

	case opSegInterp:
		cost, stall := v.segInterpAt(int(r.i1))
		v.eng.AdvanceClock(cost)
		if v.prof != nil {
			v.prof.SpanDMiss(stall)
		}

	case opCallout:
		v.callout(r.flags&flagCalloutCost != 0)

	case opBlockEnd:
		v.blockEnd(r.cat, int(r.i1), int(r.i2), uint64(r.a))

	case opExitInd:
		v.exitInd(r.cat, r.a, r.b, uint32(r.i1), r.flags)

	case opExitCall:
		v.eng.BranchCycles(timing.CTICall, r.a, r.b, uint32(r.i1), true)

	case opSample:
		v.sampleIfDue()
		if v.cycles >= v.tlNext {
			v.appendTimeline(r.a, r.b)
		}
	}
}

// The timing methods. Consumer side: each is one trace op's worth of
// timing work, the exact statement sequence of the serial code it
// replaced, shared verbatim by both execution modes.

// bookXlt books XLTx86 activity for one VM.be block translation.
func (v *VM) bookXlt(numX86 uint32, simple, complexN int) {
	v.xlt.Invocations += uint64(numX86)
	v.xlt.BusyCycles += uint64(v.xlt.Latency * simple)
	v.xlt.ComplexFallbacks += uint64(complexN)
}

// blockStart opens one translation execution: frontend mode, the
// attribution span start, and the instruction fetch.
func (v *VM) blockStart(t *codecache.Translation, cat Category) {
	v.setMode(cat == CatX86Emu)
	v.spanStart = v.eng.Now()
	var fetch float64
	switch cat {
	case CatInterp:
		fetch = v.interpFetch(t)
	case CatX86Emu:
		fetch = v.eng.FetchCycles(t.EntryPC, t.X86Bytes)
	default:
		fetch = v.eng.FetchCycles(t.Addr, t.Size)
	}
	v.eng.AdvanceClock(fetch)
	if v.prof != nil {
		v.prof.SpanOpen(t.EntryPC, fetch, v.eng.BranchStalls())
	}
}

// segInterp charges an interpreted segment of n architected
// instructions plus the queued load stalls. The queued-stall share is
// split out to the profiler as dmiss-stall cycles. Like charge, the
// guarded profiler call would push this helper past the inlining
// budget, so both callers (apply and emitSegInterp, neither inlined
// themselves) open-code the body via segInterpAt.
func (v *VM) segInterpAt(n int) (cost, stall float64) {
	stall = v.eng.DrainQueues()
	return v.Cfg.InterpCyclesPerInst*float64(n) + stall, stall
}

// callout serializes the pipeline around a complex-instruction callout.
func (v *VM) callout(chargeCost bool) {
	v.eng.Serialize()
	if chargeCost {
		v.eng.AdvanceClock(v.Cfg.CalloutCycles)
	}
	v.res.Callouts++
}

// blockEnd closes the block: profiling cost, decoder activity, span
// attribution and retirement statistics.
func (v *VM) blockEnd(cat Category, boundaries, uops int, entities uint64) {
	if cat == CatBBTEmu {
		v.eng.AdvanceClock(v.Cfg.ProfilingCycles) // embedded software profiling
	}
	if cat == CatX86Emu {
		v.dmd.OnX86Mode(boundaries)
		v.res.X86ModeCycles += v.eng.Now() - v.spanStart
	} else if cat != CatInterp {
		v.dmd.OnNativeMode(uops)
	}
	span := v.eng.Now() - v.spanStart
	v.attribute(cat, span)
	v.res.Instrs += uint64(boundaries)
	if v.prof != nil {
		v.prof.SpanClose(acatExec[cat], span, v.eng.BranchStalls())
		v.prof.NoteInstrs(v.res.Instrs, v.cycles)
	}
	switch cat {
	case CatSBTEmu:
		v.res.SBTInstrs += uint64(boundaries)
		v.res.SBTUops += uint64(uops)
		v.res.SBTEntities += entities
	case CatBBTEmu:
		v.res.BBTInstrs += uint64(boundaries)
		v.res.BBTUops += uint64(uops)
		v.res.BBTEntities += entities
	case CatX86Emu:
		v.res.X86Instrs += uint64(boundaries)
	case CatInterp:
		v.res.InterpInstrs += uint64(boundaries)
	}
}

// exitInd resolves an indirect exit: return/indirect prediction, the
// misprediction charge and the software indirect-lookup charge.
func (v *VM) exitInd(cat Category, branchPC, target, returnPC uint32, flags uint8) {
	var pen float64
	switch {
	case flags&flagRet != 0:
		pen = v.eng.BranchCycles(timing.CTIRet, branchPC, target, 0, true)
	case flags&flagCall != 0:
		pen = v.eng.BranchCycles(timing.CTIIndirect, branchPC, target, returnPC, true)
		v.eng.BranchCycles(timing.CTICall, branchPC, target, returnPC, true)
	default:
		pen = v.eng.BranchCycles(timing.CTIIndirect, branchPC, target, 0, true)
	}
	v.charge(cat, pen)
	if v.prof != nil {
		v.prof.Charge(attrib.BPredStall, branchPC, pen)
	}
	if flags&flagIndLookup != 0 {
		v.charge(CatVMM, v.Cfg.IndirectCycles)
		if v.prof != nil {
			v.prof.Charge(attrib.Chain, branchPC, v.Cfg.IndirectCycles)
		}
	}
}

// The emit* helpers below are the producer's interface to the timing
// stage: pipelined, they push one record into the ring; sequential,
// they invoke the timing method directly — no record, no dispatch
// switch. This matters: the serial mode is the fallback on single-proc
// hosts and the reference arm of every determinism test, so it should
// pay nothing for the pipeline's existence.

func (v *VM) emitCharge(cat Category, acat attrib.Category, pc uint32, cycles float64) {
	if v.pipelining {
		v.ring.push(&traceRec{op: opCharge, cat: cat, a: pc, u8: uint8(acat), c: cycles})
		return
	}
	v.charge(cat, cycles)
	if v.prof != nil {
		v.prof.Charge(acat, pc, cycles)
	}
}

func (v *VM) emitTouch(addr, size uint32, write bool) {
	if v.pipelining {
		r := traceRec{op: opTouch, a: addr, b: size}
		if write {
			r.flags = flagWrite
		}
		v.ring.push(&r)
		return
	}
	v.eng.Caches.Touch(addr, int(size), write)
}

func (v *VM) emitXlt(numX86 uint32, simple, complexN int) {
	if v.pipelining {
		v.ring.push(&traceRec{op: opXlt, a: numX86, i1: int32(simple), i2: int32(complexN)})
		return
	}
	v.bookXlt(numX86, simple, complexN)
}

func (v *VM) emitBlockStart(t *codecache.Translation, cat Category) {
	if v.pipelining {
		v.ring.push(&traceRec{op: opBlockStart, t: t, cat: cat})
		return
	}
	v.blockStart(t, cat)
}

func (v *VM) emitSeg(t *codecache.Translation, lo, hi int) {
	if v.pipelining {
		v.ring.push(&traceRec{op: opSeg, t: t, i1: int32(lo), i2: int32(hi)})
		return
	}
	v.eng.ChargeBlock(t, lo, hi)
}

func (v *VM) emitSegInterp(n int) {
	if v.pipelining {
		v.ring.push(&traceRec{op: opSegInterp, i1: int32(n)})
		return
	}
	cost, stall := v.segInterpAt(n)
	v.eng.AdvanceClock(cost)
	if v.prof != nil {
		v.prof.SpanDMiss(stall)
	}
}

func (v *VM) emitCallout(chargeCost bool) {
	if v.pipelining {
		r := traceRec{op: opCallout}
		if chargeCost {
			r.flags = flagCalloutCost
		}
		v.ring.push(&r)
		return
	}
	v.callout(chargeCost)
}

func (v *VM) emitBlockEnd(cat Category, boundaries, uops int, entities uint64) {
	if v.pipelining {
		v.ring.push(&traceRec{
			op: opBlockEnd, cat: cat,
			i1: int32(boundaries), i2: int32(uops), a: uint32(entities),
		})
		return
	}
	v.blockEnd(cat, boundaries, uops, entities)
}

func (v *VM) emitExitInd(cat Category, branchPC, target, returnPC uint32, flags uint8) {
	if v.pipelining {
		v.ring.push(&traceRec{op: opExitInd, cat: cat, a: branchPC, b: target, i1: int32(returnPC), flags: flags})
		return
	}
	v.exitInd(cat, branchPC, target, returnPC, flags)
}

func (v *VM) emitExitCall(branchPC, target, returnPC uint32) {
	if v.pipelining {
		v.ring.push(&traceRec{op: opExitCall, a: branchPC, b: target, i1: int32(returnPC)})
		return
	}
	v.eng.BranchCycles(timing.CTICall, branchPC, target, returnPC, true)
}

func (v *VM) emitSample() {
	if v.tlArmed {
		// Sampler armed: capture code-cache occupancy (producer-owned)
		// alongside the sample so the consumer can fold it into the
		// timeline at the next boundary crossing.
		bu, su := v.bbtCache.Used(), v.sbtCache.Used()
		if v.pipelining {
			v.ring.push(&traceRec{op: opSample, a: bu, b: su})
			return
		}
		v.sampleIfDue()
		if v.cycles >= v.tlNext {
			v.appendTimeline(bu, su)
		}
		return
	}
	if v.pipelining {
		v.ring.push(&traceRec{op: opSample})
		return
	}
	v.sampleIfDue()
}

// maxEventChunk bounds how many buffered observations one opEvents
// record covers. Chunking is what makes the side-ring deadlock-free:
// each chunk's events are published and its opEvents record pushed
// before the next chunk needs space, so the consumer can always free
// the ring by applying records already in the trace ring. The chunk
// must not exceed the event-ring capacity (asserted in ring.go).
const maxEventChunk = 2048

// replayEvents applies one buffered observation batch in exact program
// order: the statement sequence of apply(opLoad/opStore/opBranch) for
// the same events. Branch outcomes are dropped for interpreted blocks,
// matching the historical Env.Branch == nil wiring for CatInterp (the
// interpreter models no embedded branch predictor). Consumer side.
func (v *VM) replayEvents(evs []fisa.Event, interp bool) {
	eng := v.eng
	for i := range evs {
		e := evs[i]
		switch e.Kind {
		case fisa.EvLoad:
			eng.OnLoad(e.Addr, e.Size)
		case fisa.EvStore:
			eng.OnStore(e.Addr, e.Size)
		default:
			if !interp {
				v.OnBranch(e.Addr, e.Kind == fisa.EvBrTaken)
			}
		}
	}
}

// flushEvents hands one execution leg's buffered observations to the
// timing consumer: it copies them into the event side-ring and
// publishes one coalesced opEvents record per chunk — the batched
// replacement for the per-event opLoad/opStore/opBranch records. Only
// the pipelined mode buffers events (sequential execution keeps the
// direct probe wiring, which beats buffer-and-replay when the engine
// lives on the same goroutine), so the buffer is empty otherwise. The
// env buffer is reset for the next leg.
func (v *VM) flushEvents(env *fisa.Env, interp bool) {
	evs := env.Events
	if len(evs) == 0 {
		return
	}
	var flags uint8
	if interp {
		flags = flagInterp
	}
	for len(evs) > 0 {
		n := len(evs)
		if n > maxEventChunk {
			n = maxEventChunk
		}
		v.events.pushAll(evs[:n])
		v.ring.push(&traceRec{op: opEvents, i1: int32(n), flags: flags})
		evs = evs[n:]
	}
	env.Events = env.Events[:0]
}
