// Package codesignvm is a library-scale reproduction of "Reducing
// Startup Time in Co-Designed Virtual Machines" (Hu & Smith, ISCA 2006).
//
// It implements the paper's entire system stack in pure Go:
//
//   - an architected CISC (IA-32 subset) ISA with assembler, decoder and
//     interpreter;
//   - the implementation "fusible" micro-op ISA with its 16/32-bit
//     binary encoding and macro-op fusion rules;
//   - the staged dynamic binary translation system: basic-block
//     translator (BBT), superblock translator/optimizer (SBT) with
//     reorder-and-fuse macro-op pairing (plus optional copy-propagation
//     and dead-code-elimination extensions), concealed code caches with
//     chaining and persistence, and the VMM runtime;
//   - the two proposed hardware assists: the XLTx86 backend functional
//     unit (Table 1) and the dual-mode frontend decoders, plus the
//     Merten-style branch behavior buffer used for hotspot detection;
//   - a persistent-dataflow superscalar timing model with the Table 2
//     cache hierarchy and branch predictors;
//   - a synthetic Winstone2004-like workload suite, and one experiment
//     harness per table/figure of the paper's evaluation.
//
// # Quick start
//
//	prog, _ := codesignvm.LoadWorkload("Word", 25)
//	res, _ := codesignvm.Run(codesignvm.VMBE, prog, 20_000_000)
//	fmt.Printf("aggregate IPC %.3f, hotspot coverage %.1f%%\n",
//	    res.IPC(), 100*res.HotspotCoverage())
//
// The five machine models of the paper are Ref (a conventional
// superscalar), VMSoft, VMBE, VMFE and VMInterp. Experiment harnesses
// (Figure2 … Figure11, Overhead, OptimizerAblation, XLTCharacterization)
// regenerate the paper's tables and figures; see EXPERIMENTS.md for
// measured-versus-paper results.
package codesignvm

import (
	"io"
	"net/http"

	"codesignvm/internal/codecache"
	"codesignvm/internal/experiments"
	"codesignvm/internal/experiments/coordinator"
	"codesignvm/internal/jobs"
	"codesignvm/internal/machine"
	"codesignvm/internal/metrics"
	"codesignvm/internal/model"
	"codesignvm/internal/obs"
	"codesignvm/internal/obs/attrib"
	"codesignvm/internal/vmm"
	"codesignvm/internal/workload"
	"codesignvm/internal/x86"
)

// Core types of the public API.
type (
	// Model names one of the paper's five machine configurations.
	Model = machine.Model
	// Config parameterizes a machine (Table 2 plus §3.2 cost constants).
	Config = vmm.Config
	// Result is the outcome of one simulation run.
	Result = vmm.Result
	// Sample is one point of a startup curve.
	Sample = vmm.Sample
	// Category buckets simulated cycles (translation, emulation, VMM…).
	Category = vmm.Category
	// Program is a generated benchmark binary plus metadata.
	Program = workload.Program
	// WorkloadParams characterizes a synthetic application.
	WorkloadParams = workload.Params
	// VM is a single simulated machine instance (for incremental runs).
	VM = vmm.VM
	// Options scopes an experiment (scale, trace lengths, apps).
	Options = experiments.Options
	// Histogram is the Fig. 3 execution-frequency profile.
	Histogram = metrics.Histogram
	// Overhead is the Eq. 1 translation-overhead decomposition.
	Overhead = model.Overhead
	// Scenario is one of the §3.1 startup scenarios.
	Scenario = model.Scenario
)

// Machine models (Table 2).
const (
	Ref      = machine.Ref      // conventional superscalar reference
	VMSoft   = machine.VMSoft   // software BBT + SBT
	VMBE     = machine.VMBE     // XLTx86 backend assist + SBT
	VMFE     = machine.VMFE     // dual-mode frontend decoders + SBT
	VMInterp = machine.VMInterp // interpretation + SBT (Fig. 2)
	// VMStaged3 is the Efficeon-style three-stage extension:
	// interpret → BBT → SBT.
	VMStaged3 = machine.VMStaged3
)

// Cycle categories (Fig. 10).
const (
	CatBBTXlate = vmm.CatBBTXlate
	CatSBTXlate = vmm.CatSBTXlate
	CatBBTEmu   = vmm.CatBBTEmu
	CatSBTEmu   = vmm.CatSBTEmu
	CatX86Emu   = vmm.CatX86Emu
	CatInterp   = vmm.CatInterp
	CatVMM      = vmm.CatVMM
	// NumCategories is the size of the Fig. 10 category set.
	NumCategories = vmm.NumCategories
)

// Startup scenarios (§3.1).
const (
	DiskStartup   = model.DiskStartup
	MemoryStartup = model.MemoryStartup
	CodeCacheWarm = model.CodeCacheWarm
	SteadyState   = model.SteadyState
)

// Models lists the five machine configurations.
func Models() []Model {
	out := make([]Model, 0, machine.NumModels)
	for m := machine.Model(0); m < machine.NumModels; m++ {
		out = append(out, m)
	}
	return out
}

// ModelByName resolves "Ref", "VM.soft", "VM.be", "VM.fe" or "VM.interp".
func ModelByName(name string) (Model, error) { return machine.ByName(name) }

// DefaultConfig returns a model's baseline configuration.
func DefaultConfig(m Model) Config { return machine.Config(m) }

// Workloads lists the ten Winstone2004-like application names.
func Workloads() []string { return workload.Names() }

// WorkloadParameters returns the calibrated parameters of a named
// application.
func WorkloadParameters(name string) (WorkloadParams, error) { return workload.ByName(name) }

// LoadWorkload generates the named benchmark at the given scale divisor
// (1 = paper-sized; 25 = default experiment scale).
func LoadWorkload(name string, scale int) (*Program, error) { return workload.App(name, scale) }

// GenerateWorkload builds a benchmark from explicit parameters.
func GenerateWorkload(p WorkloadParams, scale int) (*Program, error) {
	return workload.Generate(p, scale)
}

// Run simulates prog on model m for up to maxInstrs architected
// instructions under the paper's memory-startup scenario.
func Run(m Model, prog *Program, maxInstrs uint64) (*Result, error) {
	return machine.Run(m, prog, maxInstrs)
}

// RunConfig simulates with an explicit configuration.
func RunConfig(cfg Config, prog *Program, maxInstrs uint64) (*Result, error) {
	return machine.RunConfig(cfg, prog, maxInstrs)
}

// Observability layer (internal/obs; see OBSERVABILITY.md).

type (
	// Observer is the process-wide observability root: one event sink,
	// process-level counters, and an aggregate view over per-run
	// metric registries. A nil *Observer means "disabled" everywhere.
	Observer = obs.Observer
	// Recorder is one run's observability handle (per-run metrics plus
	// event emission); mint one per run with Observer.NewRun.
	Recorder = obs.Recorder
	// MetricsSnapshot is a point-in-time copy of a metric registry; the
	// Result.Metrics field carries one per instrumented run.
	MetricsSnapshot = obs.Snapshot
	// Event is one typed VM lifecycle record.
	Event = obs.Event
	// EventKind discriminates lifecycle events (BBT translate, SBT
	// promotion, cache flush, …).
	EventKind = obs.EventKind
	// EventSink receives emitted events.
	EventSink = obs.Sink
	// JSONLSink renders events as self-describing JSON Lines.
	JSONLSink = obs.JSONLSink
	// CollectSink captures events in memory (tests, tooling).
	CollectSink = obs.CollectSink
	// TraceSink renders the event stream as Chrome trace-event JSON
	// viewable in Perfetto; call Flush when done.
	TraceSink = obs.TraceSink
	// TimelineSpec configures interval sampling (Observer.EnableTimeline).
	TimelineSpec = obs.TimelineSpec
	// Timeline is one run's allocation-bounded sequence of interval
	// snapshots (Recorder.Timeline).
	Timeline = obs.Timeline
	// TimeSlice is one cumulative timeline snapshot.
	TimeSlice = obs.TimeSlice
	// TimelineRow is one exported per-interval timeline row.
	TimelineRow = obs.TimelineRow
)

// Timeline sampling defaults (TimelineSpec zero values select these).
const (
	DefaultTimelineInterval = obs.DefaultTimelineInterval
	DefaultTimelineSlices   = obs.DefaultTimelineSlices
)

// NewObserver returns an observer emitting to sink (nil sink: metrics
// only, no event stream).
func NewObserver(sink EventSink) *Observer { return obs.NewObserver(sink) }

// NewJSONLSink returns an event sink writing JSON Lines to w; call
// Flush when done.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewCollectSink returns an in-memory event sink.
func NewCollectSink() *CollectSink { return obs.NewCollectSink() }

// NewTraceSink returns an event sink writing one Chrome trace-event
// JSON document to w (load in ui.perfetto.dev or chrome://tracing);
// call Flush when done — the output is valid JSON only after Flush.
func NewTraceSink(w io.Writer) *TraceSink { return obs.NewTraceSink(w) }

// WriteTimelinesCSV renders the timelines of the given runs (skipping
// runs without one) as one CSV table; see OBSERVABILITY.md for the
// column reference.
func WriteTimelinesCSV(w io.Writer, runs []*Recorder) error {
	return obs.WriteTimelinesCSV(w, runs)
}

// WriteTimelinesJSON renders the same timelines as JSON.
func WriteTimelinesJSON(w io.Writer, runs []*Recorder) error {
	return obs.WriteTimelinesJSON(w, runs)
}

// NewIntrospectionHandler returns an http.Handler serving the
// observer's live introspection endpoints (/metrics OpenMetrics text,
// /runs JSON, /healthz); info is attached to the /runs response. This
// is what vmsim -http mounts (plus net/http/pprof).
func NewIntrospectionHandler(o *Observer, info map[string]string) http.Handler {
	return obs.NewHTTPHandler(o, info)
}

// RunConfigObserved simulates with an observability recorder attached:
// events flow to the recorder's sink during the run and the Result
// carries the metric snapshot. A nil recorder behaves like RunConfig.
func RunConfigObserved(cfg Config, prog *Program, maxInstrs uint64, rec *Recorder) (*Result, error) {
	return machine.RunConfigObserved(cfg, prog, maxInstrs, rec)
}

// NewVM builds a VM over the program without running it, for incremental
// simulation (e.g. flush caches mid-run to study context-switch
// scenarios).
func NewVM(m Model, prog *Program) *VM { return machine.NewVM(m, prog) }

// NewConfiguredVM builds a VM from an explicit configuration without
// running it (e.g. to Restore a warm-start snapshot before Run).
func NewConfiguredVM(cfg Config, prog *Program) *VM {
	return vmm.New(cfg, prog.Memory(), prog.InitState())
}

// Warm start: persistent translation caches with lazy restore.

type (
	// WarmStart selects the translation-cache restore policy of a run
	// (off, lazy fault-in, hybrid hot-head preload, eager full preload).
	WarmStart = vmm.WarmStart
	// Snapshot is a parsed CCVM2 translation-cache snapshot with a lazy
	// per-translation index (produced by VM.SaveTranslations).
	Snapshot = codecache.Snapshot
)

// Warm-start restore policies (Config.WarmStart).
const (
	WarmOff    = vmm.WarmOff
	WarmLazy   = vmm.WarmLazy
	WarmHybrid = vmm.WarmHybrid
	WarmEager  = vmm.WarmEager
)

// ParseWarmStart resolves "off", "lazy", "hybrid" or "eager".
func ParseWarmStart(s string) (WarmStart, error) { return vmm.ParseWarmStart(s) }

// ParseSnapshot validates and indexes a serialized translation
// snapshot (the bytes VM.SaveTranslations wrote) without decoding the
// translations; VM.Restore faults them in per the configured policy.
func ParseSnapshot(data []byte) (*Snapshot, error) { return codecache.ParseSnapshot(data) }

// RunConfigWarm is RunConfigObserved with an optional warm-start
// snapshot restored (per cfg.WarmStart) before the run begins.
func RunConfigWarm(cfg Config, prog *Program, maxInstrs uint64, rec *Recorder, snap *Snapshot) (*Result, error) {
	return machine.RunConfigWarm(cfg, prog, maxInstrs, rec, snap)
}

// Cycle attribution (internal/obs/attrib; see OBSERVABILITY.md).

type (
	// AttribSpec parameterizes cycle attribution: the x86 region
	// bucketing and the instruction milestones of the phase breakdown
	// (Observer.EnableAttrib).
	AttribSpec = attrib.Spec
	// AttribCategory is one bucket of the attribution taxonomy
	// (interpret, bbt-translate, …, bpred-stall).
	AttribCategory = attrib.Category
	// AttribSnapshot is one run's immutable attribution result; the
	// per-category cycles sum exactly to the run's simulated total
	// (Result.Attrib).
	AttribSnapshot = attrib.Snapshot
	// AttribPhase is one cumulative milestone row of a snapshot.
	AttribPhase = attrib.Phase
	// AttribRegion is one non-empty x86 region of a snapshot.
	AttribRegion = attrib.RegionCycles
)

// NumAttribCategories is the size of the attribution taxonomy.
const NumAttribCategories = attrib.NumCategories

// ParseAttribCategory resolves an attribution category by name
// ("interpret", "bbt-translate", …).
func ParseAttribCategory(s string) (AttribCategory, bool) { return attrib.ParseCategory(s) }

// MergeAttrib merges attribution snapshots of the same spec (summing
// categories, regions and phase rows); pass runs in a fixed order for
// deterministic floating-point accumulation.
func MergeAttrib(snaps ...*AttribSnapshot) *AttribSnapshot { return attrib.Merge(snaps...) }

// DefaultAttribSpec returns the attribution spec the phases figure
// uses: workload code-segment regions and milestones at fixed
// fractions of the given instruction budget.
func DefaultAttribSpec(longInstrs uint64) AttribSpec {
	return experiments.DefaultAttribSpec(longInstrs)
}

// Startup-curve analysis helpers.

// SteadyIPC estimates steady-state IPC from the tail of a run.
func SteadyIPC(samples []Sample, frac float64) float64 { return metrics.SteadyIPC(samples, frac) }

// Breakeven returns the cycle count at which vm catches ref (Fig. 9).
func Breakeven(ref, vm []Sample) (float64, bool) { return metrics.Breakeven(ref, vm) }

// InstrsAt interpolates cumulative retired instructions at a cycle count.
func InstrsAt(samples []Sample, cycles float64) float64 { return metrics.InstrsAt(samples, cycles) }

// HotThreshold evaluates Eq. 2: N = ΔSBT / (p − 1).
func HotThreshold(deltaSBT, speedup float64) float64 { return model.HotThreshold(deltaSBT, speedup) }

// EstimateScenarioCycles evaluates the §3.1 startup-scenario model.
func EstimateScenarioCycles(s Scenario, p model.ScenarioParams) float64 {
	return model.EstimateCycles(s, p)
}

// ScenarioParams feeds EstimateScenarioCycles.
type ScenarioParams = model.ScenarioParams

// PaperOverhead returns the §3.2 Eq. 1 constants.
func PaperOverhead() Overhead { return model.PaperOverhead() }

// Experiment harnesses (one per table/figure; see DESIGN.md §4).

// StartupCurves is the Fig. 2 / Fig. 8 report type.
type StartupCurves = experiments.StartupCurves

// Figure2 reproduces Fig. 2 (software staged VMs vs the reference).
func Figure2(opt Options) (*StartupCurves, error) { return experiments.Fig2(opt) }

// Figure3 reproduces Fig. 3 (execution-frequency profile).
func Figure3(opt Options) (*experiments.Fig3Report, error) { return experiments.Fig3(opt) }

// Figure8 reproduces Fig. 8 (startup with hardware assists).
func Figure8(opt Options) (*StartupCurves, error) { return experiments.Fig8(opt) }

// Figure9 reproduces Fig. 9 (per-benchmark breakeven points).
func Figure9(opt Options) (*experiments.Fig9Report, error) { return experiments.Fig9(opt) }

// Figure10 reproduces Fig. 10 (VM.be cycle breakdown).
func Figure10(opt Options) (*experiments.Fig10Report, error) { return experiments.Fig10(opt) }

// Figure11 reproduces Fig. 11 (x86-decode hardware activity).
func Figure11(opt Options) (*experiments.Fig11Report, error) { return experiments.Fig11(opt) }

// MeasureOverhead reproduces the §3.2 Eq. 1 measurement.
func MeasureOverhead(opt Options) (*experiments.OverheadReport, error) {
	return experiments.Sec32Overhead(opt)
}

// OptimizerAblation quantifies each SBT optimization pass.
func OptimizerAblation(opt Options) (*experiments.AblationReport, error) {
	return experiments.Ablation(opt)
}

// XLTCharacterization exercises the Table 1 instruction on a random
// stream.
func XLTCharacterization(n int, seed int64) (*experiments.Table1Report, error) {
	return experiments.Table1(n, seed)
}

// PersistentStartupExperiment measures FX!32-style translation reuse
// (extension experiment; see DESIGN.md).
func PersistentStartupExperiment(opt Options) (*experiments.PersistReport, error) {
	return experiments.PersistentStartup(opt)
}

// WarmStartCurves is the warm-start startup-figure report type.
type WarmStartCurves = experiments.WarmStartCurves

// WarmStartExperiment runs the warm-start startup figure: cold VM.soft
// vs lazy/hybrid/eager persistent-cache restore vs Ref (DESIGN.md §10).
func WarmStartExperiment(opt Options) (*WarmStartCurves, error) {
	return experiments.WarmStartFig(opt)
}

// PhasesCurves is the phase-attribution figure's report type.
type PhasesCurves = experiments.PhasesCurves

// PhasesExperiment runs the phase-attribution figure: the startup
// transient of cold vs warm-started VM.soft decomposed by attribution
// category at each instruction milestone (OBSERVABILITY.md).
func PhasesExperiment(opt Options) (*PhasesCurves, error) {
	return experiments.PhasesFig(opt)
}

// CodeCachePressureExperiment sweeps code-cache capacities (extension
// experiment quantifying the paper's §1.1 multitasking concern).
func CodeCachePressureExperiment(opt Options, app string, sizes []uint32) (*experiments.PressureReport, error) {
	return experiments.CodeCachePressure(opt, app, sizes)
}

// DumpTranslations renders the hottest translations of a short run as
// annotated x86→micro-op listings (inspection tooling).
func DumpTranslations(app string, m Model, scale int, instrs uint64, top int) (string, error) {
	return experiments.DumpTranslations(app, m, scale, instrs, top)
}

// ColdStartExperiment runs the OS-boot-like workload across all machine
// models (§1.1 motivation: cold-code-dominated phases).
func ColdStartExperiment(opt Options) (*experiments.ColdStartReport, error) {
	return experiments.ColdStart(opt)
}

// ContextSwitchExperiment sweeps context-switch frequency (§1.1
// motivation: multitasking server-like systems).
func ContextSwitchExperiment(opt Options, app string, periods []uint64) (*experiments.SwitchReport, error) {
	return experiments.ContextSwitch(opt, app, periods)
}

// StagedComparisonExperiment compares emulation-staging strategies:
// interpretation+SBT, three-stage interp→BBT→SBT, and two-stage BBT+SBT.
func StagedComparisonExperiment(opt Options) (*StartupCurves, error) {
	return experiments.StagedComparison(opt)
}

// DeltaBBTSweepExperiment varies the BBT translation cost between the
// software and fully-assisted values.
func DeltaBBTSweepExperiment(opt Options, app string, deltas []float64) (*experiments.DeltaReport, error) {
	return experiments.DeltaBBTSweep(opt, app, deltas)
}

// Named experiment registry: the dispatch table shared by cmd/vmsim's
// -exp flag and the async job service, so both produce byte-identical
// reports for the same request.

// ExperimentNames lists every report experiment runnable by name.
func ExperimentNames() []string { return experiments.ExperimentNames() }

// ExpandExperiment resolves the composites: "sweep" → the six paper
// figures, "all" → every report experiment; other names pass through.
func ExpandExperiment(name string) []string { return experiments.ExpandExperiment(name) }

// RunExperiment executes one named report experiment and returns its
// formatted report text — exactly what vmsim prints for the same
// flags. app parameterizes the app-scoped extension experiments
// (pressure, ctxswitch, deltasweep); empty selects "Word".
func RunExperiment(name string, opt Options, app string) (string, error) {
	return experiments.RunExperiment(name, opt, app)
}

// Distributed sweeps (internal/experiments/coordinator): shard an
// experiment's grid across N worker processes over the shared run
// store; see docs/ARCHITECTURE.md for the quick start.

type (
	// SweepUnit is one schedulable cell of an experiment's grid
	// (experiment × app).
	SweepUnit = experiments.Unit
	// SweepConfig parameterizes one distributed sweep.
	SweepConfig = coordinator.Config
	// SweepStats summarizes a distributed sweep's outcome.
	SweepStats = coordinator.Stats
)

// ExpandSweepUnits expands an experiment name (composites included)
// into the work units a distributed sweep schedules.
func ExpandSweepUnits(name string, opt Options, app string) []SweepUnit {
	return experiments.ExpandUnits(name, opt, app)
}

// RunDistributedSweep spawns cfg.Workers worker processes that split
// the experiment's units over the shared run store, and blocks until
// they exit. Merge afterwards by running the experiment normally with
// the same store: every cell hits, so the report is byte-identical to
// the single-process sweep.
func RunDistributedSweep(cfg SweepConfig) (SweepStats, error) { return coordinator.Run(cfg) }

// RunSweepWorker is the worker-process side of a distributed sweep
// (vmsim's -worker mode): claim units through the store's lock
// protocol, run them, publish done markers, and print protocol lines
// to out.
func RunSweepWorker(shard, workers int, exp, app string, opt Options, out io.Writer) error {
	return coordinator.RunWorker(shard, workers, exp, app, opt, out)
}

// Async job service (internal/jobs; HTTP reference in docs/api.md).

type (
	// JobSpec is one submitted workload: experiment name plus grid
	// parameters (apps, scale, budget, hot threshold).
	JobSpec = jobs.Spec
	// JobState is a job's lifecycle state (queued, running, done,
	// failed, cancelled).
	JobState = jobs.State
	// Job is one submitted workload moving through the manager.
	Job = jobs.Job
	// JobStatus is a job's externally visible snapshot (the
	// GET /jobs/{id} response body).
	JobStatus = jobs.Status
	// JobManager owns the job table, bounded queue and worker pool.
	JobManager = jobs.Manager
	// JobManagerConfig parameterizes NewJobManager.
	JobManagerConfig = jobs.Config
	// JobAPI serves the /jobs HTTP endpoints over a manager.
	JobAPI = jobs.API
)

// NewJobManager starts an async job manager: jobs execute the named
// experiments through the crash-safe run store (exactly-once
// simulation, duplicate-spec dedupe). The worker pool is live on
// return; stop it with Manager.Drain.
func NewJobManager(cfg JobManagerConfig) (*JobManager, error) { return jobs.NewManager(cfg) }

// NewJobAPI wraps a job manager with the HTTP surface (POST/GET/DELETE
// /jobs…; docs/api.md). rate/burst configure per-client submission
// token buckets; mount it with Register on the introspection mux.
func NewJobAPI(m *JobManager, rate, burst float64) *JobAPI { return jobs.NewAPI(m, rate, burst) }

// Report formatters (text tables matching the paper's presentation).
var (
	FormatStartup   = experiments.FormatStartup
	FormatFig3      = experiments.FormatFig3
	FormatFig9      = experiments.FormatFig9
	FormatFig10     = experiments.FormatFig10
	FormatFig11     = experiments.FormatFig11
	FormatOverhead  = experiments.FormatOverhead
	FormatAblation  = experiments.FormatAblation
	FormatTable1    = experiments.FormatTable1
	FormatTable2    = experiments.FormatTable2
	FormatPersist   = experiments.FormatPersist
	FormatWarmStart = experiments.FormatWarmStart
	FormatPressure  = experiments.FormatPressure
	FormatColdStart = experiments.FormatColdStart
	FormatSwitch    = experiments.FormatSwitch
	FormatDelta     = experiments.FormatDelta
	FormatPhases    = experiments.FormatPhases
)

// Low-level access for tooling: the architected ISA package types needed
// to construct custom programs.
type (
	// Asm is the IA-32 subset assembler.
	Asm = x86.Asm
	// ArchState is the architected register state.
	ArchState = x86.State
	// ArchMemory is the sparse 32-bit address space.
	ArchMemory = x86.Memory
)

// NewAsm returns an assembler emitting at the given base address.
func NewAsm(base uint32) *Asm { return x86.NewAsm(base) }

// NewMemory returns an empty architected address space.
func NewMemory() *ArchMemory { return x86.NewMemory() }
