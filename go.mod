module codesignvm

go 1.22
