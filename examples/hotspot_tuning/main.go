// hotspot_tuning explores the staged-translation threshold trade-off of
// §3.2: Eq. 2 predicts the breakeven threshold N = ΔSBT/(p−1); this
// example sweeps the hot threshold around that value on a real workload
// and shows the balance the paper describes — a low threshold wastes
// cycles optimizing code that never repays (over-translation), a high
// threshold leaves hotspot performance on the table (under-coverage).
package main

import (
	"fmt"
	"log"

	codesignvm "codesignvm"
)

func main() {
	// Eq. 2 with the paper's constants.
	fmt.Println("Eq. 2: N = ΔSBT / (p − 1)")
	for _, p := range []float64{1.10, 1.15, 1.20, 1.50, 2.0} {
		fmt.Printf("  speedup p = %.2f → N = %6.0f\n", p, codesignvm.HotThreshold(1200, p))
	}
	fmt.Printf("  interpreter (p ≈ 48) → N = %.0f\n\n", codesignvm.HotThreshold(1200, 48))

	prog, err := codesignvm.LoadWorkload("Excel", 50)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 10_000_000

	fmt.Println("measured threshold sweep (VM.soft, Excel workload):")
	fmt.Printf("%10s %12s %12s %10s %12s %12s\n",
		"threshold", "cycles (M)", "agg IPC", "coverage", "SBT xlate%", "superblocks")
	for _, thr := range []uint64{500, 2000, 8000, 32000, 128000} {
		cfg := codesignvm.DefaultConfig(codesignvm.VMSoft)
		cfg.HotThreshold = thr
		res, err := codesignvm.RunConfig(cfg, prog, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %12.2f %12.3f %9.1f%% %11.1f%% %12d\n",
			thr, res.Cycles/1e6, res.IPC(),
			100*res.HotspotCoverage(),
			100*res.Cat[codesignvm.CatSBTXlate]/res.Cycles,
			res.SBTTranslations)
	}
	fmt.Println("\nThe paper's threshold (8000) balances optimization overhead against")
	fmt.Println("hotspot coverage; far lower thresholds burn cycles in the optimizer,")
	fmt.Println("far higher ones strand execution in unoptimized BBT code.")
}
