// Quickstart: simulate one Winstone-like benchmark on the reference
// superscalar and on the co-designed VM with the XLTx86 backend assist,
// and compare startup behaviour.
package main

import (
	"fmt"
	"log"

	codesignvm "codesignvm"
)

func main() {
	// Generate the "Word" benchmark at 1/50 of the paper's footprint
	// (fast enough for a demo; use scale 25 or 1 for real experiments).
	prog, err := codesignvm.LoadWorkload("Word", 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d static x86 instructions (%d hot, %d kernels)\n\n",
		prog.Params.Name, prog.StaticInstrs, prog.HotInstrs, prog.NumKernels)

	const budget = 20_000_000
	ref, err := codesignvm.Run(codesignvm.Ref, prog, budget)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := codesignvm.Run(codesignvm.VMBE, prog, budget)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s\n", "", "Ref", "VM.be")
	row := func(name string, a, b float64, unit string) {
		fmt.Printf("%-22s %14.3f %14.3f %s\n", name, a, b, unit)
	}
	row("total cycles (M)", ref.Cycles/1e6, vm.Cycles/1e6, "")
	row("aggregate IPC", ref.IPC(), vm.IPC(), "")
	row("steady-state IPC",
		codesignvm.SteadyIPC(ref.Samples, 0.5),
		codesignvm.SteadyIPC(vm.Samples, 0.5), "")
	fmt.Printf("%-22s %14s %14.1f %%\n", "hotspot coverage", "-", 100*vm.HotspotCoverage())
	fmt.Printf("%-22s %14s %14d\n", "XLTx86 invocations", "-", vm.XltInvocations)

	if be, ok := codesignvm.Breakeven(ref.Samples, vm.Samples); ok {
		fmt.Printf("\nVM.be catches the reference superscalar after %.3g cycles\n", be)
	} else {
		fmt.Println("\nVM.be did not catch the reference within this trace")
	}

	gain := codesignvm.SteadyIPC(vm.Samples, 0.5)/codesignvm.SteadyIPC(ref.Samples, 0.5) - 1
	fmt.Printf("steady-state gain from macro-op fusion: %+.1f%%\n", 100*gain)
}
