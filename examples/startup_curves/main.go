// startup_curves regenerates the paper's headline figures (Fig. 2 and
// Fig. 8): normalized aggregate-IPC startup curves for all machine
// configurations, printed as CSV suitable for plotting. With -timeline
// it also samples a fine-grained per-run timeline (per-interval IPC and
// instruction mix by translation stage) and writes it alongside.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	codesignvm "codesignvm"
)

var (
	scale    = flag.Int("scale", 50, "workload scale divisor")
	apps     = flag.String("apps", "Word,Excel,Winzip", "benchmarks to average over")
	csv      = flag.Bool("csv", false, "emit raw CSV instead of tables")
	timeline = flag.String("timeline", "", "also write interval-sampled per-run timelines to this file (.json: JSON, otherwise CSV)")
)

func main() {
	flag.Parse()
	opt := codesignvm.Options{Scale: *scale}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	var obs *codesignvm.Observer
	if *timeline != "" {
		// Timelines are sampled only by fresh simulations, so disable
		// the in-process result cache for this run.
		obs = codesignvm.NewObserver(nil)
		obs.EnableTimeline(codesignvm.TimelineSpec{})
		opt.Obs = obs
		opt.FreshRuns = true
	}

	fig2, err := codesignvm.Figure2(opt)
	if err != nil {
		log.Fatal(err)
	}
	fig8, err := codesignvm.Figure8(opt)
	if err != nil {
		log.Fatal(err)
	}

	if *timeline != "" {
		if err := writeTimelines(obs, *timeline); err != nil {
			log.Fatal(err)
		}
	}
	if *csv {
		emitCSV("fig2", fig2)
		emitCSV("fig8", fig8)
		return
	}
	fmt.Print(codesignvm.FormatStartup(fig2, "Fig. 2 — software staged translation startup"))
	fmt.Println()
	fmt.Print(codesignvm.FormatStartup(fig8, "Fig. 8 — startup with hardware assists"))
	fmt.Println("\nReading the curves: the y-axis is cumulative instructions / cycles,")
	fmt.Println("normalized to the reference superscalar's steady-state IPC. VM.fe")
	fmt.Println("tracks Ref almost exactly; VM.be lags briefly; software BBT and")
	fmt.Println("especially interpretation (Fig. 2) pay long startup transients.")
}

func writeTimelines(obs *codesignvm.Observer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runs := obs.Runs()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = codesignvm.WriteTimelinesJSON(f, runs)
	} else {
		err = codesignvm.WriteTimelinesCSV(f, runs)
	}
	if err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d run timelines to %s\n", len(runs), path)
	return f.Close()
}

func emitCSV(name string, s *codesignvm.StartupCurves) {
	fmt.Printf("# %s\ncycles", name)
	for _, m := range s.Models {
		fmt.Printf(",%v", m)
	}
	fmt.Println()
	for gi, c := range s.Grid {
		fmt.Printf("%g", c)
		for _, m := range s.Models {
			fmt.Printf(",%.4f", s.Curves[m][gi])
		}
		fmt.Println()
	}
}
