// Observability: attach a metrics recorder and a JSONL event sink to a
// simulation, print the per-run metric snapshot, aggregate across runs,
// and show the structured lifecycle-event stream. OBSERVABILITY.md
// documents every metric and event kind shown here.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	codesignvm "codesignvm"
)

func main() {
	// One process-wide observer; its sink receives every lifecycle
	// event from every run, tagged with the run's identity. A JSONL
	// sink streams them to disk as self-describing JSON Lines.
	f, err := os.CreateTemp("", "codesignvm-events-*.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	sink := codesignvm.NewJSONLSink(f)
	obsv := codesignvm.NewObserver(sink)

	// Simulate two machine models under observation. Each run gets its
	// own recorder (metrics registry) minted from the shared observer.
	prog, err := codesignvm.LoadWorkload("Word", 50)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 5_000_000
	var last *codesignvm.Result
	for _, m := range []codesignvm.Model{codesignvm.VMSoft, codesignvm.VMBE} {
		cfg := codesignvm.DefaultConfig(m)
		tag := fmt.Sprintf("%v/%s", m, prog.Params.Name)
		res, err := codesignvm.RunConfigObserved(cfg, prog, budget, obsv.NewRun(tag))
		if err != nil {
			log.Fatal(err)
		}
		last = res
	}

	// Per-run metrics ride on the Result. Counters like
	// vm.bbt.translations are maintained live at their emission sites;
	// vm.run.* and vm.cache.* are mirrored from the run's final stats.
	fmt.Println("== per-run metrics (VM.be/Word) ==")
	last.Metrics.Format(os.Stdout)

	// Aggregate merges every run's snapshot: counters and histogram
	// buckets sum, gauges keep their maximum.
	agg := obsv.Aggregate()
	fmt.Printf("\n== aggregate over %d runs ==\n", obsv.RunCount())
	if m, ok := agg.Get("vm.bbt.translations"); ok {
		fmt.Printf("total BBT translations: %.0f\n", m.Value)
	}
	if m, ok := agg.Get("vm.sbt.promotions"); ok {
		fmt.Printf("total SBT promotions:   %.0f\n", m.Value)
	}

	// The event stream: flush the sink and show the first few lines.
	// Each line carries the global sequence number, the event kind, the
	// run tag and per-kind payload fields (see OBSERVABILITY.md).
	if err := sink.Flush(); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== first lifecycle events (of %d) ==\n", obsv.EventsEmitted())
	sc := bufio.NewScanner(f)
	for i := 0; i < 6 && sc.Scan(); i++ {
		fmt.Println(sc.Text())
	}
}
