// scenario_analysis reproduces the §3.1 startup-scenario taxonomy two
// ways: analytically (the Eq. 1-based timeline model) and by direct
// measurement — running a VM through a memory startup, then flushing the
// processor caches mid-run to emulate a short context switch and
// measuring the code-cache-warm transient, where translations survive
// and only the cache hierarchy must re-warm.
package main

import (
	"fmt"
	"log"

	codesignvm "codesignvm"
)

func main() {
	analytic()
	measured()
}

func analytic() {
	p := codesignvm.ScenarioParams{
		Overhead:        codesignvm.PaperOverhead(),
		CyclesPerNative: 1.0,
		DiskLatency:     20e6, // ~10 ms at 2 GHz
		ColdMissCycles:  3e6,
		SteadyIPC:       1.5,
		WorkInstrs:      100e6,
	}
	fmt.Println("§3.1 scenarios — analytic timeline (100M-instruction task):")
	for _, s := range []codesignvm.Scenario{
		codesignvm.DiskStartup, codesignvm.MemoryStartup,
		codesignvm.CodeCacheWarm, codesignvm.SteadyState,
	} {
		c := codesignvm.EstimateScenarioCycles(s, p)
		fmt.Printf("  %-22v %10.1fM cycles (%.2fx steady state)\n",
			s, c/1e6, c/codesignvm.EstimateScenarioCycles(codesignvm.SteadyState, p))
	}
	fmt.Println()
}

func measured() {
	prog, err := codesignvm.LoadWorkload("Norton", 50)
	if err != nil {
		log.Fatal(err)
	}
	const phase = 5_000_000

	vm := codesignvm.NewVM(codesignvm.VMSoft, prog)

	// Phase 1: memory startup (binary resident, caches cold, nothing
	// translated).
	p1, err := vm.Run(phase)
	if err != nil {
		log.Fatal(err)
	}
	res1 := *p1 // snapshot: Run returns a live view of the VM's result
	fmt.Printf("memory startup:      %d instrs in %.3gM cycles (IPC %.3f)\n",
		res1.Instrs, res1.Cycles/1e6, res1.IPC())

	// Context switch: another task evicts the caches, but the code
	// caches (in concealed main memory) keep every translation.
	vm.Engine().Caches.Flush()
	vm.Engine().Pred.Reset()

	// Phase 2: code-cache-warm startup.
	p2, err := vm.Run(2 * phase)
	if err != nil {
		log.Fatal(err)
	}
	res2 := *p2
	warmCycles := res2.Cycles - res1.Cycles
	warmInstrs := res2.Instrs - res1.Instrs
	fmt.Printf("code-cache warm:     %d instrs in %.3gM cycles (IPC %.3f)\n",
		warmInstrs, warmCycles/1e6, float64(warmInstrs)/warmCycles)

	// Reference comparison: the same two phases on a conventional core.
	ref := codesignvm.NewVM(codesignvm.Ref, prog)
	q1, err := ref.Run(phase)
	if err != nil {
		log.Fatal(err)
	}
	r1 := *q1
	ref.Engine().Caches.Flush()
	ref.Engine().Pred.Reset()
	q2, err := ref.Run(2 * phase)
	if err != nil {
		log.Fatal(err)
	}
	r2 := *q2

	fmt.Printf("\n%-26s %12s %12s\n", "phase", "Ref IPC", "VM.soft IPC")
	fmt.Printf("%-26s %12.3f %12.3f   <- translation overhead exposed\n",
		"memory startup", float64(r1.Instrs)/r1.Cycles, res1.IPC())
	fmt.Printf("%-26s %12.3f %12.3f   <- translations reused, only caches re-warm\n",
		"code-cache warm restart",
		float64(r2.Instrs-r1.Instrs)/(r2.Cycles-r1.Cycles),
		float64(warmInstrs)/warmCycles)
	fmt.Println("\nAs §3.1 argues, the VM's disadvantage is concentrated in the memory-")
	fmt.Println("startup scenario; once translations are resident, the transient after")
	fmt.Println("a short context switch behaves like a conventional processor's.")
}
