// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 maps IDs to harnesses). Each
// benchmark regenerates its experiment at a reduced scale and reports
// the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set end to end. EXPERIMENTS.md records
// full-scale paper-vs-measured comparisons.
package codesignvm_test

import (
	"bytes"
	"os"
	"testing"

	codesignvm "codesignvm"
)

// benchOpt is the common benchmark scale: three representative apps
// (including Project, the paper's outlier) at 1/100 footprint with
// 500M-equivalent→9M-instruction traces.
func benchOpt() codesignvm.Options {
	return codesignvm.Options{
		Scale:       100,
		LongInstrs:  9_000_000,
		ShortInstrs: 3_000_000,
		Apps:        []string{"Word", "Winzip", "Project"},
		Sequential:  true,
		// Every iteration must simulate; cache hits would turn ns/op
		// into a measurement of the result cache.
		FreshRuns: true,
	}
}

// BenchmarkFig2StartupSoftware regenerates Figure 2: startup of the
// software-only staged VMs (BBT+SBT, Interp+SBT) against the reference
// superscalar. Reported metrics are the normalized aggregate IPC of each
// scheme at the end of the traces.
func BenchmarkFig2StartupSoftware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.Figure2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last := len(rep.Grid) - 1
		b.ReportMetric(rep.Curves[codesignvm.Ref][last], "ref-final-normIPC")
		b.ReportMetric(rep.Curves[codesignvm.VMSoft][last], "soft-final-normIPC")
		b.ReportMetric(rep.Curves[codesignvm.VMInterp][last], "interp-final-normIPC")
	}
}

// BenchmarkFig3FrequencyProfile regenerates Figure 3: the execution
// frequency profile and the MBBT/MSBT statistics feeding Eq. 1.
func BenchmarkFig3FrequencyProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.Figure3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.MBBT, "MBBT-static-instrs")
		b.ReportMetric(rep.MSBT, "MSBT-hot-instrs")
		b.ReportMetric(100*rep.MSBT/rep.MBBT, "hot-static-%")
	}
}

// BenchmarkSec32OverheadModel evaluates Eq. 1 on measured workload
// statistics: the BBT and SBT components of translation overhead (the
// paper's 15.75M vs 5.02M native instructions at full scale).
func BenchmarkSec32OverheadModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.MeasureOverhead(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Measured.BBTComponent()/1e6, "BBT-Minstrs")
		b.ReportMetric(rep.Measured.SBTComponent()/1e6, "SBT-Minstrs")
	}
}

// BenchmarkTable1XLTx86 exercises the XLTx86 backend functional unit
// (Table 1) over a randomized instruction stream and reports its CSR
// statistics: µop bytes, complex-fallback rate.
func BenchmarkTable1XLTx86(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.XLTCharacterization(20000, 2006)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.AvgUopBytes, "uop-bytes/x86")
		b.ReportMetric(rep.ComplexPct, "Flag_cmplx-%")
		b.ReportMetric(rep.AvgUopsPerX86, "uops/x86")
	}
}

// BenchmarkFig8StartupAssists regenerates Figure 8: startup with the
// hardware assists. Reports the mid-trace normalized IPC of each scheme
// (the visual separation of the figure) and the steady-state VM gain.
func BenchmarkFig8StartupAssists(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.Figure8(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		mid := len(rep.Grid) * 3 / 4
		b.ReportMetric(rep.Curves[codesignvm.Ref][mid], "ref-mid-normIPC")
		b.ReportMetric(rep.Curves[codesignvm.VMSoft][mid], "soft-mid-normIPC")
		b.ReportMetric(rep.Curves[codesignvm.VMBE][mid], "be-mid-normIPC")
		b.ReportMetric(rep.Curves[codesignvm.VMFE][mid], "fe-mid-normIPC")
		b.ReportMetric(100*(rep.SteadyNorm[codesignvm.VMFE]-1), "steady-gain-%")
	}
}

// BenchmarkFig9Breakeven regenerates Figure 9: per-benchmark breakeven
// points. Reports how many (app, scheme) pairs broke even and the
// earliest VM.fe breakeven.
func BenchmarkFig9Breakeven(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.Figure9(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		broke := 0.0
		feBest := 0.0
		for _, row := range rep.Breakeven {
			for _, be := range row {
				if be > 0 {
					broke++
				}
			}
			if fe := row[codesignvm.VMFE]; fe > 0 && (feBest == 0 || fe < feBest) {
				feBest = fe
			}
		}
		b.ReportMetric(broke, "pairs-broke-even")
		b.ReportMetric(feBest, "fe-earliest-cycles")
	}
}

// BenchmarkFig10BBTOverhead regenerates Figure 10: the VM.be cycle
// breakdown. Reports the paper's headline percentages (BBT translation
// overhead under VM.be vs VM.soft, BBT-emulation share, coverage).
func BenchmarkFig10BBTOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.Figure10(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Avg.BBTXlatePct, "be-bbt-xlate-%")
		b.ReportMetric(rep.Avg.SoftBBTXlatePct, "soft-bbt-xlate-%")
		b.ReportMetric(rep.Avg.BBTEmuPct, "bbt-emu-%")
		b.ReportMetric(rep.Avg.Coverage, "sbt-coverage-%")
		b.ReportMetric(rep.Avg.CyclesPerXlatedInst, "cycles/xlated-inst")
	}
}

// BenchmarkFig11DecoderActivity regenerates Figure 11: aggregate
// activity of the x86 decode hardware. Reports the final activity of
// each configuration (Ref stays at 100%, VM.be decays to ~0).
func BenchmarkFig11DecoderActivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.Figure11(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last := len(rep.Grid) - 1
		b.ReportMetric(rep.Activity[codesignvm.Ref][last], "ref-activity-%")
		b.ReportMetric(rep.Activity[codesignvm.VMBE][last], "be-activity-%")
		b.ReportMetric(rep.Activity[codesignvm.VMFE][last], "fe-activity-%")
	}
}

// BenchmarkAblationOptimizer quantifies the SBT design choices
// (DESIGN.md §5): macro-op fusion and the optional cleanup passes.
func BenchmarkAblationOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := codesignvm.OptimizerAblation(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		base := rep.SteadyIPC["baseline"]
		b.ReportMetric(100*(base/rep.SteadyIPC["no-fusion"]-1), "fusion-gain-%")
		b.ReportMetric(100*rep.FusedFrac["baseline"], "fused-uops-%")
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed (the
// substitution that makes full sweeps feasible; DESIGN.md §5).
func BenchmarkSimulationThroughput(b *testing.B) {
	prog, err := codesignvm.LoadWorkload("Word", 100)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 2_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := codesignvm.Run(codesignvm.VMBE, prog, budget)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instrs), "instrs/op")
	}
}

// BenchmarkWarmSweep measures one full warm-start run: a fresh
// VM.soft VM that restores from a pre-built translation snapshot
// (built once, outside the timer) and executes a 9M-instruction Word
// trace. The WARMSTART_BENCH_MODE environment variable selects the
// restore policy — cold, lazy (default), hybrid or eager — under the
// SAME benchmark name, so `benchjson -diff` matches the cold and warm
// arms and scripts/ci.sh can gate the warm-vs-cold wall-clock delta.
func BenchmarkWarmSweep(b *testing.B) {
	mode := codesignvm.WarmLazy
	if env := os.Getenv("WARMSTART_BENCH_MODE"); env != "" && env != "cold" {
		m, err := codesignvm.ParseWarmStart(env)
		if err != nil || m == codesignvm.WarmOff {
			b.Fatalf("WARMSTART_BENCH_MODE=%q: want cold, lazy, hybrid or eager", env)
		}
		mode = m
	} else if env == "cold" {
		mode = codesignvm.WarmOff
	}
	prog, err := codesignvm.LoadWorkload("Word", 100)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 9_000_000
	cfg := codesignvm.DefaultConfig(codesignvm.VMSoft)
	var snap *codesignvm.Snapshot
	if mode != codesignvm.WarmOff {
		vm := codesignvm.NewConfiguredVM(cfg, prog)
		if _, err := vm.Run(budget); err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := vm.SaveTranslations(&buf); err != nil {
			b.Fatal(err)
		}
		if snap, err = codesignvm.ParseSnapshot(buf.Bytes()); err != nil {
			b.Fatal(err)
		}
		cfg.WarmStart = mode
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := codesignvm.RunConfigWarm(cfg, prog, budget, nil, snap)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cycles, "sim-cycles")
		b.ReportMetric(float64(res.RestoredTranslations), "restored")
		b.ReportMetric(float64(res.BBTTranslations), "bbt-xlations")
	}
}

// BenchmarkTranslationLatency measures the cost of the translators
// themselves (host-side): basic-block translation and superblock
// formation+optimization per call.
func BenchmarkTranslationLatency(b *testing.B) {
	prog, err := codesignvm.LoadWorkload("Excel", 100)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bbt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Cold VM: first dispatch translates.
			vm := codesignvm.NewVM(codesignvm.VMSoft, prog)
			if _, err := vm.Run(1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vm := codesignvm.NewVM(codesignvm.VMInterp, prog)
			if _, err := vm.Run(1000); err != nil {
				b.Fatal(err)
			}
		}
	})
}
