package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	codesignvm "codesignvm"
)

// startIntrospection serves the live introspection endpoints on an
// already-bound listener (bound during flag validation so an occupied
// port fails before any simulation starts):
//
//	/metrics       aggregate metrics, OpenMetrics text (Prometheus)
//	/runs          sweep progress and per-run state, JSON
//	/healthz       liveness probe
//	/debug/pprof/  the standard Go profiling endpoints
//	/jobs…         the async job API, in -exp serve mode only
//	               (docs/api.md; submissions need the run store)
//
// The returned stop function shuts the server down gracefully and
// reports any serve or shutdown failure, so a server that died
// mid-sweep (or refused to drain) surfaces as a non-zero exit instead
// of a swallowed goroutine log; the sweep does not wait on it
// otherwise.
func startIntrospection(ln net.Listener, o *codesignvm.Observer) (stop func() error) {
	mux := http.NewServeMux()
	mux.Handle("/", codesignvm.NewIntrospectionHandler(o, map[string]string{
		"exp":   *expFlag,
		"scale": fmt.Sprint(*scaleFlag),
	}))
	if jobsManager != nil {
		codesignvm.NewJobAPI(jobsManager, *jobsRate, *jobsBurst).Register(mux)
	}
	// net/http/pprof registers only on http.DefaultServeMux; mount its
	// handlers explicitly so this private mux serves them too.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	var serveErr error // written before close(done), read after <-done
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr = err
			fmt.Fprintln(os.Stderr, "vmsim: -http:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "vmsim: introspection server on http://%s\n", ln.Addr())
	return func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		shutErr := srv.Shutdown(ctx)
		<-done
		if serveErr != nil {
			return fmt.Errorf("-http: %w", serveErr)
		}
		if shutErr != nil {
			return fmt.Errorf("-http shutdown: %w", shutErr)
		}
		return nil
	}
}
