// Command vmsim drives the co-designed VM simulator: it runs individual
// machine/benchmark combinations or regenerates any table/figure of the
// paper's evaluation.
//
// Usage:
//
//	vmsim -exp fig8                      # startup curves with HW assists
//	vmsim -exp fig9 -scale 25            # per-benchmark breakeven points
//	vmsim -exp all                       # every experiment, in order
//	vmsim -exp run -model VM.be -app Word -instrs 20000000
//
// Experiments: fig2 fig3 fig8 fig9 fig10 fig11 overhead threshold
// ablation table1 table2 run sweep all. "sweep" runs the paper's
// figures (2, 3, 8–11) in one process so they share simulation
// results; "all" adds the extension experiments.
//
// Cycle attribution (see OBSERVABILITY.md):
//
//	vmsim -exp phases                    # startup decomposed by category
//	vmsim -exp run -flamegraph out.folded
//	vmsim -exp phases -flamegraph out.folded
//
// Warm start (persistent translation caches; see DESIGN.md §10):
//
//	vmsim -exp warmstart                 # cold vs lazy/hybrid/eager figure
//	vmsim -exp run -warm-cache lazy      # single-run warm-vs-cold A/B
//
// Observability (see OBSERVABILITY.md):
//
//	vmsim -exp fig2 -metrics table           # aggregate metric table
//	vmsim -exp run -events events.jsonl      # JSONL lifecycle events
//	vmsim -exp run -trace run.trace.json     # Chrome trace (Perfetto)
//	vmsim -exp run -timeline tl.csv          # interval-sampled timelines
//	vmsim -exp sweep -http 127.0.0.1:890     # live introspection server
//	vmsim -exp sweep -progress 10s           # periodic progress line
//
// Job service (async sweep-as-a-service API; see docs/api.md):
//
//	vmsim -exp serve -http :8080 -store /var/lib/vmsim/store
//	curl -d '{"exp":"fig2","scale":200}' http://localhost:8080/jobs
//
// Host-side profiling (see README.md):
//
//	vmsim -exp sweep -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	codesignvm "codesignvm"
)

var (
	expFlag    = flag.String("exp", "fig8", "experiment: fig2 fig3 fig8 fig9 fig10 fig11 overhead threshold ablation table1 table2 persist warmstart pressure coldstart ctxswitch staged deltasweep phases dump run sweep all serve")
	scaleFlag  = flag.Int("scale", 25, "workload scale divisor (1 = paper-sized)")
	appsFlag   = flag.String("apps", "", "comma-separated subset of benchmarks (default: all ten)")
	modelFlag  = flag.String("model", "VM.soft", "machine model for -exp run")
	appFlag    = flag.String("app", "Word", "benchmark for -exp run")
	instrsFlag = flag.Uint64("instrs", 0, "instruction budget (default 500M/scale)")
	seqFlag    = flag.Bool("seq", false, "run the experiment grid sequentially")
	pipeFlag   = flag.Bool("pipeline", true, "decouple functional execution and timing onto two goroutines per run (identical reports, faster wall-clock)")
	nothreaded = flag.Bool("nothreaded", false, "disable the direct-threaded dispatch fast path in every simulated VM (identical reports; A/B measurement)")
	freshFlag  = flag.Bool("fresh", false, "disable the simulation-result caches (in-process memoization and -store reads)")
	storeFlag  = flag.String("store", "", "directory for the persistent cross-process run store (empty: disabled; see docs/runstore.md)")
	storeMax   = flag.Int64("store-max", 0, "cap on total -store record bytes; least-recently-used records are evicted at startup (0: uncapped)")
	warmFlag   = flag.String("warm-cache", "off", "warm-start restore policy for -exp run: off lazy hybrid eager (runs a cold pass first, snapshots its translations, then A/Bs the warm restore)")

	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	gotraceFile = flag.String("gotrace", "", "write a Go runtime execution trace to this file")

	metricsFlag  = flag.String("metrics", "", "print aggregate observability metrics on exit: \"table\" or \"json\"")
	eventsFlag   = flag.String("events", "", "write the VM lifecycle-event trace to this file (JSON Lines)")
	traceFlag    = flag.String("trace", "", "write the lifecycle-event stream as Chrome trace-event JSON to this file (view in Perfetto)")
	timelineFlag = flag.String("timeline", "", "sample per-run startup timelines and write them to this file on exit (.json: JSON, otherwise CSV); implies -fresh")
	tlInterval   = flag.Float64("timeline-interval", codesignvm.DefaultTimelineInterval, "initial timeline slice width in simulated cycles")
	tlSlices     = flag.Int("timeline-slices", codesignvm.DefaultTimelineSlices, "max timeline slices per run (full timelines coalesce, doubling the interval)")
	flameFlag    = flag.String("flamegraph", "", "write a collapsed-stack cycle-attribution profile (category;region count) merged over every simulated run to this file on exit; enables attribution on all runs")
	httpFlag     = flag.String("http", "", "serve live introspection on this address (/metrics /runs /healthz /debug/pprof; -exp serve adds /jobs)")
	progressFlag = flag.Duration("progress", 0, "print a progress line to stderr at this interval during sweeps (0: disabled; requires a terminal on stderr)")

	workersFlag = flag.Int("workers", 0, "distribute the experiment across N worker processes sharing -store, then merge (0: single-process; requires -store; see docs/ARCHITECTURE.md)")
	workerFlag  = flag.String("worker", "", "internal: run as distributed-sweep worker SHARD/COUNT (spawned by -workers; not for direct use)")

	jobsWorkers  = flag.Int("jobs-workers", 2, "worker-pool size of the -exp serve job service")
	jobsQueue    = flag.Int("jobs-queue", 16, "bounded queue depth of the job service (full queue: 429 + Retry-After)")
	jobsRate     = flag.Float64("jobs-rate", 5, "per-client job submissions per second (0: unlimited)")
	jobsBurst    = flag.Float64("jobs-burst", 10, "per-client submission burst size")
	drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, how long -exp serve waits for accepted jobs before cancelling them")
)

// obsv is the process observer, non-nil when any observability flag is
// set. All experiment and single runs report into it.
var obsv *codesignvm.Observer

// jobsManager is the async job service, non-nil in -exp serve mode
// (created in setupObservability so the /jobs endpoints are mounted
// when the introspection server starts).
var jobsManager *codesignvm.JobManager

// runCtx cancels the experiment grid (task pickup and store lock
// waits) on SIGINT/SIGTERM, so an interrupted sweep exits promptly and
// releases its store locks instead of dying mid-heartbeat.
var runCtx = context.Background()

func main() {
	flag.Parse()
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	runCtx = ctx
	stop, err := startProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmsim:", err)
		os.Exit(1)
	}
	finish, err := setupObservability()
	if err != nil {
		stop()
		fmt.Fprintln(os.Stderr, "vmsim:", err)
		os.Exit(1)
	}
	err = run()
	if ferr := finish(); err == nil {
		err = ferr
	}
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmsim:", err)
		os.Exit(1)
	}
}

// multiSink fans one event stream out to several sinks (-events and
// -trace together).
type multiSink []codesignvm.EventSink

func (m multiSink) Emit(e codesignvm.Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// validateObsFlags checks the observability flag set up front, so a bad
// combination fails with one clear line before any simulation starts,
// never mid-sweep. Output files are created here (catching unwritable
// paths), and the -http listener is bound here (catching occupied
// ports).
func validateObsFlags() (files map[string]*os.File, ln net.Listener, err error) {
	fail := func(format string, args ...any) (map[string]*os.File, net.Listener, error) {
		for _, f := range files {
			f.Close()
		}
		if ln != nil {
			ln.Close()
		}
		return nil, nil, fmt.Errorf(format, args...)
	}
	if *metricsFlag != "" && *metricsFlag != "table" && *metricsFlag != "json" {
		return fail("-metrics must be \"table\" or \"json\", got %q", *metricsFlag)
	}
	if *tlInterval <= 0 {
		return fail("-timeline-interval must be positive, got %g", *tlInterval)
	}
	if *tlSlices < 2 {
		return fail("-timeline-slices must be at least 2, got %d", *tlSlices)
	}
	if *progressFlag > 0 {
		if fi, serr := os.Stderr.Stat(); serr == nil && fi.Mode()&os.ModeCharDevice == 0 {
			return fail("-progress needs a terminal on stderr (it rewrites a status line); use -http %s for live introspection instead", "ADDR")
		}
	}
	// Distributed sweeps coordinate exclusively through the shared run
	// store, and the merge pass must be able to hit every prefilled
	// record — so flag combinations that bypass or pollute the store
	// fail here with one line, before any worker is spawned.
	if *workersFlag < 0 {
		return fail("-workers must be >= 0, got %d", *workersFlag)
	}
	if *workersFlag > 0 {
		if *workerFlag != "" {
			return fail("-workers and -worker are mutually exclusive (-worker is the internal child mode)")
		}
		if *storeFlag == "" {
			return fail("-workers requires -store DIR: workers coordinate and publish results through the shared run store")
		}
		switch *expFlag {
		case "run", "dump", "serve":
			return fail("-workers only applies to report experiments, not -exp %s", *expFlag)
		}
		if *freshFlag {
			return fail("-workers is incompatible with -fresh: the merge pass must read the workers' store records")
		}
		if *timelineFlag != "" {
			return fail("-workers is incompatible with -timeline (it implies -fresh; only fresh simulations sample a timeline)")
		}
		if *flameFlag != "" {
			return fail("-workers is incompatible with -flamegraph: attribution recorders live in the worker processes, so the merged profile would be empty")
		}
	}
	if *workerFlag != "" {
		if _, _, err := parseShard(*workerFlag); err != nil {
			return fail("-worker: %v", err)
		}
		if *storeFlag == "" {
			return fail("-worker requires -store DIR (the coordinator always passes it)")
		}
		switch *expFlag {
		case "run", "dump", "serve":
			return fail("-worker only applies to report experiments, not -exp %s", *expFlag)
		}
	}
	// The job service needs both a front door and the run store: jobs
	// execute through the store for exactly-once simulation and
	// duplicate-spec dedupe, so a missing -store must fail here with
	// one line, not as a 500 at submit time. (Plain -http without
	// -exp serve stays introspection-only and needs no store.)
	if *expFlag == "serve" {
		if *httpFlag == "" || *storeFlag == "" {
			return fail("-exp serve requires both -http ADDR and -store DIR (jobs execute through the run store; see docs/api.md)")
		}
		if *freshFlag {
			return fail("-exp serve is incompatible with -fresh: bypassing store reads would break the job service's exactly-once dedupe")
		}
		if *timelineFlag != "" {
			return fail("-exp serve is incompatible with -timeline (it implies -fresh); use GET /jobs/{id} for live job progress")
		}
		if *jobsWorkers < 1 {
			return fail("-jobs-workers must be at least 1, got %d", *jobsWorkers)
		}
		if *jobsQueue < 1 {
			return fail("-jobs-queue must be at least 1, got %d", *jobsQueue)
		}
	}
	files = map[string]*os.File{}
	for _, out := range []struct{ flag, path string }{
		{"-events", *eventsFlag}, {"-trace", *traceFlag}, {"-timeline", *timelineFlag},
		{"-flamegraph", *flameFlag},
	} {
		if out.path == "" {
			continue
		}
		f, cerr := os.Create(out.path)
		if cerr != nil {
			return fail("%s: %v", out.flag, cerr)
		}
		files[out.flag] = f
	}
	if *httpFlag != "" {
		ln, err = net.Listen("tcp", *httpFlag)
		if err != nil {
			return fail("-http %s: %v", *httpFlag, err)
		}
	}
	return files, ln, nil
}

// setupObservability builds the process observer from the -metrics,
// -events, -trace, -timeline, -http and -progress flags. The returned
// finish function stops the progress printer, prints the aggregate
// metrics, flushes the event and trace files and writes the timeline
// export; it must run after the experiments complete.
func setupObservability() (finish func() error, err error) {
	files, ln, err := validateObsFlags()
	if err != nil {
		return nil, err
	}
	if *metricsFlag == "" && *progressFlag <= 0 && len(files) == 0 && ln == nil {
		return func() error { return nil }, nil
	}

	var sinks multiSink
	var jsonl *codesignvm.JSONLSink
	var tracer *codesignvm.TraceSink
	if f := files["-events"]; f != nil {
		jsonl = codesignvm.NewJSONLSink(f)
		sinks = append(sinks, jsonl)
	}
	if f := files["-trace"]; f != nil {
		tracer = codesignvm.NewTraceSink(f)
		sinks = append(sinks, tracer)
	}
	var sink codesignvm.EventSink
	switch len(sinks) {
	case 0:
	case 1:
		sink = sinks[0]
	default:
		sink = sinks
	}
	obsv = codesignvm.NewObserver(sink)
	if *flameFlag != "" {
		// Attribution milestones follow the effective instruction budget,
		// matching the options() / withDefaults derivation.
		budget := *instrsFlag
		if budget == 0 && *scaleFlag > 0 {
			budget = 500_000_000 / uint64(*scaleFlag)
		}
		obsv.EnableAttrib(codesignvm.DefaultAttribSpec(budget))
	}
	if *timelineFlag != "" {
		obsv.EnableTimeline(codesignvm.TimelineSpec{
			IntervalCycles: *tlInterval,
			MaxSlices:      *tlSlices,
		})
		// Cached and store-loaded results carry no timeline — only a
		// fresh simulation samples one — so -timeline forces -fresh
		// (options() honors this); store writes still happen.
		if !*freshFlag {
			fmt.Fprintln(os.Stderr, "vmsim: -timeline implies -fresh (only fresh simulations sample a timeline)")
		}
	}
	if *expFlag == "serve" {
		// The manager must exist before the server starts so the /jobs
		// endpoints are live from the first request. Jobs derive from
		// Background, not the signal context: SIGTERM triggers a
		// graceful drain (serveJobs), not an instant cancellation.
		jobsManager, err = codesignvm.NewJobManager(codesignvm.JobManagerConfig{
			Workers:       *jobsWorkers,
			QueueDepth:    *jobsQueue,
			Store:         *storeFlag,
			StoreMaxBytes: *storeMax,
			Obs:           obsv,
		})
		if err != nil {
			return nil, err
		}
	}
	stopHTTP := func() error { return nil }
	if ln != nil {
		stopHTTP = startIntrospection(ln, obsv)
	}
	stopProgress := func() {}
	if *progressFlag > 0 {
		stopProgress = startProgress(obsv, *progressFlag)
	}
	return func() error {
		stopProgress()
		// FullSnapshot: the per-run aggregate plus the process-level
		// registry (runs.*, store.* health), matching /metrics.
		if *metricsFlag == "json" {
			if err := obsv.FullSnapshot().WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else if *metricsFlag == "table" {
			fmt.Printf("observability metrics (aggregate over %d runs):\n", obsv.RunCount())
			obsv.FullSnapshot().Format(os.Stdout)
		}
		var firstErr error
		keep := func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		}
		if jsonl != nil {
			keep(jsonl.Flush())
			fmt.Fprintf(os.Stderr, "vmsim: wrote %d events to %s\n", obsv.EventsEmitted(), *eventsFlag)
			keep(files["-events"].Close())
		}
		if tracer != nil {
			keep(tracer.Flush())
			fmt.Fprintf(os.Stderr, "vmsim: wrote Chrome trace to %s (open in ui.perfetto.dev)\n", *traceFlag)
			keep(files["-trace"].Close())
		}
		if f := files["-timeline"]; f != nil {
			runs := obsv.Runs()
			if strings.EqualFold(filepath.Ext(*timelineFlag), ".json") {
				keep(codesignvm.WriteTimelinesJSON(f, runs))
			} else {
				keep(codesignvm.WriteTimelinesCSV(f, runs))
			}
			fmt.Fprintf(os.Stderr, "vmsim: wrote %d run timelines to %s\n", len(runs), *timelineFlag)
			keep(f.Close())
		}
		if f := files["-flamegraph"]; f != nil {
			// Merge in tag order, not run-completion order, so the merged
			// counts do not depend on pool scheduling. Cache and store
			// hits mint no recorder, so only freshly simulated runs
			// contribute (use -fresh for a complete profile).
			type tagged struct {
				tag  string
				snap *codesignvm.AttribSnapshot
			}
			var snaps []tagged
			for _, r := range obsv.Runs() {
				if s := r.AttribSnapshot(); s != nil {
					snaps = append(snaps, tagged{r.Tag(), s})
				}
			}
			sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].tag < snaps[j].tag })
			ordered := make([]*codesignvm.AttribSnapshot, len(snaps))
			for i, t := range snaps {
				ordered[i] = t.snap
			}
			keep(codesignvm.MergeAttrib(ordered...).WriteCollapsed(f))
			fmt.Fprintf(os.Stderr, "vmsim: wrote collapsed-stack attribution of %d runs to %s\n", len(snaps), *flameFlag)
			keep(f.Close())
		}
		keep(stopHTTP())
		return firstErr
	}, nil
}

// startProgress prints a periodic sweep-progress line to stderr. It
// reads only atomic process counters, the global event sequence and the
// (mutex-guarded) timeline tails, so it is safe against the
// concurrently running experiment grid.
func startProgress(o *codesignvm.Observer, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		start := time.Now()
		lastEvents := uint64(0)
		lastTick := start
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				events := o.EventsEmitted()
				rate := float64(events-lastEvents) / now.Sub(lastTick).Seconds()
				lastEvents, lastTick = events, now
				line := fmt.Sprintf("[vmsim +%s] runs %d/%d done, store %d hit / %d miss, %d events (%.0f ev/s)",
					time.Since(start).Round(time.Second),
					o.Proc.Counter("runs.done", "runs").Value(),
					o.Proc.Counter("runs.started", "runs").Value(),
					o.Proc.Counter("store.hits", "loads").Value(),
					o.Proc.Counter("store.misses", "loads").Value(),
					events, rate)
				if ipc, ok := o.LiveIntervalIPC(); ok {
					line += fmt.Sprintf(", interval IPC %.3f", ipc)
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// startProfiling wires the standard pprof/trace outputs around the run.
// The returned stop function must run before exit (os.Exit skips
// defers, so main sequences it explicitly).
func startProfiling() (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *gotraceFile != "" {
		f, err := os.Create(*gotraceFile)
		if err != nil {
			stop()
			return func() {}, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return func() {}, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if *memProfile != "" {
		path := *memProfile
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vmsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vmsim: memprofile:", err)
			}
		})
	}
	return stop, nil
}

func options() codesignvm.Options {
	opt := codesignvm.Options{
		Scale:              *scaleFlag,
		Sequential:         *seqFlag,
		NoPipeline:         !*pipeFlag,
		NoThreadedDispatch: *nothreaded,
		FreshRuns:          *freshFlag || *timelineFlag != "",
		Store:              *storeFlag,
		StoreMaxBytes:      *storeMax,
		Obs:                obsv,
		Ctx:                runCtx,
	}
	if *appsFlag != "" {
		opt.Apps = strings.Split(*appsFlag, ",")
	}
	if *instrsFlag > 0 {
		opt.LongInstrs = *instrsFlag
		opt.ShortInstrs = *instrsFlag / 5
	}
	return opt
}

func run() error {
	if *expFlag == "serve" {
		return serveJobs()
	}
	if *workerFlag != "" {
		return runWorker()
	}
	if *workersFlag > 0 {
		// Distributed prefill: N worker processes split the grid's
		// units and fill the shared store. The normal report loop below
		// then runs unchanged as the merge pass — every simulation
		// hits, so the output is byte-identical to a single-process
		// sweep by construction.
		if err := runDistributed(); err != nil {
			return err
		}
	}
	// "sweep" and "all" expand through the shared registry ("sweep":
	// the paper's figures in one process — fig8/fig9/fig11 share
	// their long-trace runs and fig10's VM.soft run seeds the
	// ablation-style short traces through the result cache).
	exps := codesignvm.ExpandExperiment(*expFlag)
	for _, exp := range exps {
		start := time.Now()
		if err := runOne(exp); err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", exp, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runOne(exp string) error {
	opt := options()
	switch exp {
	case "dump":
		m, err := codesignvm.ModelByName(*modelFlag)
		if err != nil {
			return err
		}
		txt, err := codesignvm.DumpTranslations(*appFlag, m, *scaleFlag, *instrsFlag, 3)
		if err != nil {
			return err
		}
		fmt.Print(txt)
		return nil
	case "run":
		return runSingle(opt)
	}
	// Every report experiment dispatches through the shared registry —
	// the same code path the job service executes, so a report fetched
	// from GET /jobs/{id}/result is byte-identical to this output.
	txt, err := codesignvm.RunExperiment(exp, opt, *appFlag)
	if err != nil {
		return err
	}
	fmt.Print(txt)
	return nil
}

// parseShard parses the -worker SHARD/COUNT value.
func parseShard(s string) (shard, workers int, err error) {
	if n, _ := fmt.Sscanf(s, "%d/%d", &shard, &workers); n != 2 {
		return 0, 0, fmt.Errorf("want SHARD/COUNT (e.g. 0/4), got %q", s)
	}
	if workers < 1 || shard < 0 || shard >= workers {
		return 0, 0, fmt.Errorf("shard %d out of range for %d workers", shard, workers)
	}
	return shard, workers, nil
}

// runWorker is the -worker child mode: fill the shared store with this
// shard's units (plus any it steals) and exit. Protocol lines go to
// stdout, where the spawning coordinator parses them.
func runWorker() error {
	shard, workers, err := parseShard(*workerFlag)
	if err != nil {
		return err
	}
	return codesignvm.RunSweepWorker(shard, workers, *expFlag, *appFlag, options(), os.Stdout)
}

// runDistributed spawns the -workers N worker fleet and waits for it.
// Worker failures are warnings, not errors: the merge pass re-simulates
// anything a failed worker left missing.
func runDistributed() error {
	kill := -1
	if v := os.Getenv("VMSIM_COORD_KILL_WORKER"); v != "" {
		// Crash-recovery seam for tests and the CI gate: SIGKILL this
		// shard after its first completed unit and let the survivors
		// reclaim its work.
		if _, err := fmt.Sscanf(v, "%d", &kill); err != nil {
			return fmt.Errorf("VMSIM_COORD_KILL_WORKER=%q: %v", v, err)
		}
	}
	st, err := codesignvm.RunDistributedSweep(codesignvm.SweepConfig{
		Exp:        *expFlag,
		App:        *appFlag,
		Opt:        options(),
		Workers:    *workersFlag,
		Command:    workerCmd,
		Log:        os.Stderr,
		KillWorker: kill,
	})
	if err != nil {
		return err
	}
	for _, werr := range st.WorkerErrs {
		fmt.Fprintf(os.Stderr, "vmsim: warning: %v (merge pass will fill the gap)\n", werr)
	}
	return nil
}

// workerCmd re-execs this binary as one distributed-sweep worker,
// forwarding the grid-shaping flags. Each worker gets an even share of
// the host's cores (unless the user pinned GOMAXPROCS), so N workers
// do not oversubscribe the machine N-fold.
func workerCmd(shard, workers int) *exec.Cmd {
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	args := []string{
		"-worker", fmt.Sprintf("%d/%d", shard, workers),
		"-exp", *expFlag,
		"-app", *appFlag,
		"-scale", fmt.Sprint(*scaleFlag),
		"-store", *storeFlag,
		"-pipeline=" + fmt.Sprint(*pipeFlag),
		"-nothreaded=" + fmt.Sprint(*nothreaded),
	}
	if *appsFlag != "" {
		args = append(args, "-apps", *appsFlag)
	}
	if *instrsFlag > 0 {
		args = append(args, "-instrs", fmt.Sprint(*instrsFlag))
	}
	cmd := exec.Command(self, args...)
	cmd.Stderr = os.Stderr
	if os.Getenv("GOMAXPROCS") == "" {
		per := runtime.NumCPU() / workers
		if per < 1 {
			per = 1
		}
		cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", per))
	}
	return cmd
}

// serveJobs is -exp serve: the process becomes a long-running job
// service. The HTTP server (and the /jobs endpoints) is already up
// via setupObservability; this just holds the process open until
// SIGINT/SIGTERM, then drains — accepted jobs complete (bounded by
// -drain-timeout, after which they are cancelled) before the server
// shuts down.
func serveJobs() error {
	fmt.Fprintf(os.Stderr, "vmsim: job service ready: POST /jobs (workers=%d queue=%d store=%s); SIGINT/SIGTERM drains\n",
		*jobsWorkers, *jobsQueue, *storeFlag)
	<-runCtx.Done()
	fmt.Fprintf(os.Stderr, "vmsim: draining job service (up to %v)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := jobsManager.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w (running jobs were cancelled)", err)
	}
	return nil
}

func runSingle(opt codesignvm.Options) error {
	m, err := codesignvm.ModelByName(*modelFlag)
	if err != nil {
		return err
	}
	prog, err := codesignvm.LoadWorkload(*appFlag, *scaleFlag)
	if err != nil {
		return err
	}
	budget := *instrsFlag
	if budget == 0 {
		budget = 500_000_000 / uint64(*scaleFlag)
	}
	warmMode, err := codesignvm.ParseWarmStart(*warmFlag)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %v: %d static instrs, budget %d\n", *appFlag, m, prog.StaticInstrs, budget)
	cfg := codesignvm.DefaultConfig(m)
	cfg.Pipeline = *pipeFlag
	start := time.Now()
	// NewRun on a nil observer returns a nil recorder: observability off.
	vm := codesignvm.NewConfiguredVM(cfg, prog)
	vm.SetObserver(obsv.NewRun(fmt.Sprintf("%v/%s", m, *appFlag)))
	res, err := vm.Run(budget)
	if err != nil {
		return err
	}
	el := time.Since(start)
	fmt.Printf("retired %d instructions in %.4g cycles (IPC %.3f) — %.1fM instrs/s wall\n",
		res.Instrs, res.Cycles, res.IPC(), float64(res.Instrs)/el.Seconds()/1e6)
	if warmMode != codesignvm.WarmOff {
		// A/B: snapshot the cold run's translation caches, then re-run
		// the same workload restoring from them.
		var buf bytes.Buffer
		if err := vm.SaveTranslations(&buf); err != nil {
			return err
		}
		snap, err := codesignvm.ParseSnapshot(buf.Bytes())
		if err != nil {
			return err
		}
		wcfg := cfg
		wcfg.WarmStart = warmMode
		wstart := time.Now()
		wres, err := codesignvm.RunConfigWarm(wcfg, prog, budget,
			obsv.NewRun(fmt.Sprintf("%v/%s/warm-%v", m, *appFlag, warmMode)), snap)
		if err != nil {
			return err
		}
		wel := time.Since(wstart)
		fmt.Printf("warm-%v: %.4g cycles (cold %.4g, %.2fx), restored %d translations (%d x86 instrs) of %d snapshotted (%d bytes), %d BBT re-translations — %v wall (cold %v)\n",
			warmMode, wres.Cycles, res.Cycles, res.Cycles/wres.Cycles,
			wres.RestoredTranslations, wres.RestoredX86, snap.Len(), buf.Len(),
			wres.BBTTranslations, wel.Round(time.Millisecond), el.Round(time.Millisecond))
	}
	fmt.Printf("steady-state IPC (tail): %.3f   hotspot coverage: %.1f%%\n",
		codesignvm.SteadyIPC(res.Samples, 0.5), 100*res.HotspotCoverage())
	fmt.Printf("cycle breakdown:\n")
	for c := codesignvm.Category(0); c < codesignvm.NumCategories; c++ {
		if res.Cat[c] > 0 {
			fmt.Printf("  %-10v %14.4g  (%.1f%%)\n", c, res.Cat[c], 100*res.Cat[c]/res.Cycles)
		}
	}
	if a := res.Attrib; a != nil {
		fmt.Printf("cycle attribution (per-category sum is exact):\n")
		for c := codesignvm.AttribCategory(0); c < codesignvm.NumAttribCategories; c++ {
			if a.Cat[c] > 0 {
				fmt.Printf("  %-16v %14.4g  (%.1f%%)\n", c, a.Cat[c], 100*a.Cat[c]/a.TotalCycles)
			}
		}
	}
	fmt.Printf("translations: %d BBT (%d instrs), %d SBT (%d instrs), %d callouts\n",
		res.BBTTranslations, res.BBTX86Translated, res.SBTTranslations, res.SBTX86Translated, res.Callouts)
	if res.XltInvocations > 0 {
		fmt.Printf("XLTx86: %d invocations, %d busy cycles\n", res.XltInvocations, res.XltBusyCycles)
	}
	fmt.Println("startup curve (cycles, cumulative instrs, aggregate IPC):")
	for i := 0; i < len(res.Samples); i += 8 {
		s := res.Samples[i]
		fmt.Printf("  %14.4g %14d %8.3f\n", s.Cycles, s.Instrs, s.AggregateIPC())
	}
	return nil
}
