package codesignvm_test

import (
	"fmt"

	codesignvm "codesignvm"
)

// ExampleHotThreshold reproduces the paper's Eq. 2 computation of the
// balanced hotspot threshold.
func ExampleHotThreshold() {
	n := codesignvm.HotThreshold(1200, 1.15) // ΔSBT ≈ 1200 x86 instrs, p = 1.15
	fmt.Printf("hot threshold N = %.0f\n", n)
	// Output: hot threshold N = 8000
}

// ExamplePaperOverhead evaluates Eq. 1 with the paper's §3.2 values,
// showing that basic-block translation dominates startup overhead.
func ExamplePaperOverhead() {
	o := codesignvm.PaperOverhead()
	fmt.Printf("BBT %.4gM, SBT %.4gM, BBT dominates: %v\n",
		o.BBTComponent()/1e6, o.SBTComponent()/1e6, o.BBTDominates())
	// Output: BBT 15.75M, SBT 5.022M, BBT dominates: true
}

// ExampleRun simulates a small benchmark on the VM with the XLTx86
// backend assist and reports what the run produced.
func ExampleRun() {
	prog, err := codesignvm.LoadWorkload("Winzip", 400) // tiny demo scale
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := codesignvm.Run(codesignvm.VMBE, prog, 200_000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("retired ≥200k instructions: %v\n", res.Instrs >= 200_000)
	fmt.Printf("XLTx86 used: %v\n", res.XltInvocations > 0)
	fmt.Printf("cycles accounted: %v\n", res.Cycles > 0)
	// Output:
	// retired ≥200k instructions: true
	// XLTx86 used: true
	// cycles accounted: true
}

// ExampleModelByName resolves the paper's machine-configuration names.
func ExampleModelByName() {
	m, _ := codesignvm.ModelByName("VM.fe")
	fmt.Println(m == codesignvm.VMFE)
	// Output: true
}
