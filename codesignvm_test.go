package codesignvm_test

import (
	"testing"

	codesignvm "codesignvm"
)

func TestPublicModels(t *testing.T) {
	models := codesignvm.Models()
	if len(models) != 6 { // the paper's five plus the 3-stage extension
		t.Fatalf("models = %d, want 6", len(models))
	}
	for _, m := range models {
		back, err := codesignvm.ModelByName(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v failed: %v", m, err)
		}
	}
	if _, err := codesignvm.ModelByName("nope"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestPublicWorkloads(t *testing.T) {
	names := codesignvm.Workloads()
	if len(names) != 10 {
		t.Fatalf("suite size = %d", len(names))
	}
	p, err := codesignvm.WorkloadParameters("Project")
	if err != nil {
		t.Fatal(err)
	}
	if p.Fusability >= 0.5 {
		t.Errorf("Project must be the low-fusability outlier: %v", p.Fusability)
	}
}

func TestPublicRunEndToEnd(t *testing.T) {
	prog, err := codesignvm.LoadWorkload("Norton", 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := codesignvm.Run(codesignvm.VMSoft, prog, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instrs < 300_000 {
		t.Errorf("retired %d", res.Instrs)
	}
	if res.IPC() <= 0 || res.IPC() > 3 {
		t.Errorf("IPC %f implausible", res.IPC())
	}
	if len(res.Samples) == 0 {
		t.Error("no samples")
	}
	if got := codesignvm.InstrsAt(res.Samples, res.Cycles); got < float64(res.Instrs)*0.99 {
		t.Errorf("InstrsAt(end) = %f, want ≈ %d", got, res.Instrs)
	}
}

func TestPublicConfigOverride(t *testing.T) {
	cfg := codesignvm.DefaultConfig(codesignvm.VMBE)
	if cfg.BBTCyclesPerInst != 20 {
		t.Errorf("VM.be ΔBBT = %v, want 20", cfg.BBTCyclesPerInst)
	}
	cfg = codesignvm.DefaultConfig(codesignvm.VMSoft)
	if cfg.BBTCyclesPerInst != 83 {
		t.Errorf("VM.soft ΔBBT = %v, want 83", cfg.BBTCyclesPerInst)
	}
	if cfg.HotThreshold != 8000 {
		t.Errorf("threshold = %d", cfg.HotThreshold)
	}
}

func TestPublicHotThreshold(t *testing.T) {
	if n := codesignvm.HotThreshold(1200, 1.15); n < 7999 || n > 8001 {
		t.Errorf("Eq. 2 = %v", n)
	}
}

func TestPublicScenarios(t *testing.T) {
	p := codesignvm.ScenarioParams{
		Overhead:        codesignvm.PaperOverhead(),
		CyclesPerNative: 1,
		DiskLatency:     1e6,
		ColdMissCycles:  1e5,
		SteadyIPC:       1.5,
		WorkInstrs:      1e7,
	}
	mem := codesignvm.EstimateScenarioCycles(codesignvm.MemoryStartup, p)
	warm := codesignvm.EstimateScenarioCycles(codesignvm.CodeCacheWarm, p)
	if mem <= warm {
		t.Errorf("memory startup (%v) must exceed warm (%v)", mem, warm)
	}
}

func TestPublicAssembler(t *testing.T) {
	a := codesignvm.NewAsm(0x400000)
	a.Label("top")
	a.Nop()
	a.Jmp("top")
	code, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	mem := codesignvm.NewMemory()
	mem.WriteBytes(0x400000, code)
	if mem.Read8(0x400000) != 0x90 {
		t.Error("nop not written")
	}
}

func TestPublicIncrementalVM(t *testing.T) {
	prog, err := codesignvm.LoadWorkload("Excel", 200)
	if err != nil {
		t.Fatal(err)
	}
	vm := codesignvm.NewVM(codesignvm.Ref, prog)
	r1, err := vm.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	c1, i1 := r1.Cycles, r1.Instrs
	vm.Engine().Caches.Flush()
	r2, err := vm.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Instrs <= i1 || r2.Cycles <= c1 {
		t.Errorf("incremental run did not progress: %v/%v then %v/%v", i1, c1, r2.Instrs, r2.Cycles)
	}
}
